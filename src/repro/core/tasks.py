"""Pure task implementations shared by the serial and parallel engines.

The engine used to run each DAG task as a method mutating the result
graph in place.  That coupling blocked shard-parallel execution, so the
task bodies now live here in three functional layers:

* **kernels** — pure functions of explicit, picklable inputs
  (``property_shard_values``, ``generate_structure``, ``match_edge``).
  A kernel re-derives its random stream from ``(root seed, task id)``,
  so *any* process given the same inputs computes bit-identical output:
  the in-place contract of Section 4.1 that makes distributed
  generation possible.
* **input extraction** — ``*_inputs`` helpers that read a task's
  dependencies out of the partially-built :class:`PropertyGraph` in the
  coordinating process.
* **integration** — ``apply_task``, which composes extraction, kernel
  and result storage for the serial path; the parallel executor uses
  the same extraction/kernel pieces but runs kernels in a worker pool.

Property kernels additionally accept an id *range*: generating rows
``[start, stop)`` with the full-table stream is bit-identical to the
corresponding slice of single-shot generation, which is what lets the
executor shard large property tables across workers (see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from ..prng import RandomStream, derive_seed
from ..properties.registry import create_property_generator
from ..structure.registry import create_generator
from ..tables import PropertyTable
from .dependency import DependencyError
from .matching import (
    bipartite_sbm_part_match,
    random_match,
    sbm_part_match,
)
from .schema import Cardinality, SchemaError

__all__ = [
    "align_joint",
    "apply_task",
    "edge_property_inputs",
    "export_task_output",
    "generate_structure",
    "match_edge",
    "match_inputs",
    "match_prepare",
    "node_property_inputs",
    "property_shard_values",
    "property_values_at",
    "resolve_count",
    "store_task_output",
    "structure_inputs",
]

#: structures-dict key prefix for match-prepare outputs (stream
#: precomputation is an intermediate, like pre-matching structures).
_PREP_KEY = "__match_prep__:"


# -- kernels (picklable inputs; safe to run in worker processes) -------------


def property_shard_values(
    spec, task_id, seed, start, stop, dep_slices=(), out=None
):
    """Values of the id range ``[start, stop)`` of one property table.

    ``dep_slices`` are the dependency columns *aligned with the range*
    (row ``j`` belongs to instance ``start + j``).  Because the stream
    seed depends only on ``(seed, task_id)`` and ``run_many`` is a pure
    function of ``(id, r(id), deps)``, the concatenation of shard
    outputs is bit-identical to single-shot generation — including the
    dtype when the range is empty, which the generator's
    ``output_dtype`` governs via its empty ``run_many`` result.

    ``out`` is an optional preallocated buffer view for the range
    (shared-memory backends only): generators that declare
    ``supports_out`` fill it in place, so the executor assembles a
    sharded table without a concatenation copy.  Generators without
    the flag — e.g. third-party PGs — transparently fall back to the
    allocating path, with the result copied into ``out`` here.
    """
    generator = create_property_generator(spec.name, **spec.params)
    stream = RandomStream(derive_seed(seed, task_id))
    ids = np.arange(start, stop, dtype=np.int64)
    deps = [np.asarray(col) for col in dep_slices]
    if out is None:
        return generator.run_many(ids, stream, *deps)
    if getattr(generator, "supports_out", False):
        return generator.run_many(ids, stream, *deps, out=out)
    out[:] = generator.run_many(ids, stream, *deps)
    return out


def property_values_at(spec, task_id, seed, ids, dep_slices=()):
    """Values of an *arbitrary* id subset of one property table.

    The random-access twin of :func:`property_shard_values`: instead of
    a contiguous range, ``ids`` picks any rows, and ``dep_slices`` are
    the dependency columns aligned with ``ids``.  Built on the PG
    protocol's ``properties_of``, so for random-access generators the
    result is byte-identical to gathering ``ids`` from a full run —
    the kernel the virtual-graph serving layer answers point and page
    queries with (see docs/serving.md).
    """
    generator = create_property_generator(spec.name, **spec.params)
    stream = RandomStream(derive_seed(seed, task_id))
    ids = np.ascontiguousarray(ids, dtype=np.int64)
    deps = [np.asarray(col) for col in dep_slices]
    return generator.properties_of(ids, stream, *deps)


def generate_structure(spec, sg_seed, n):
    """Run a structure generator: the pre-matching edge table."""
    generator = create_generator(spec.name, seed=sg_seed, **spec.params)
    return generator.run(n)


def match_prepare(seed, edge_name, structure, counts_tables=None):
    """Stream-order precomputation for a correlated matching step.

    A pure function of ``(seed, edge name, structure)``: re-derives the
    arrival permutation exactly as :func:`match_edge` would (from the
    ``match:<edge>`` stream) and builds the streaming kernel's
    :class:`~repro.core.matching.kernel.MatchPrep` — CSR adjacency,
    arrival positions, cold-prefix length and (on the numpy path) the
    later-neighbour counts tables.  Because it is pure and picklable,
    the parallel executor runs it in a worker as soon as the structure
    exists, overlapping it with the rest of the DAG.
    """
    from .matching.kernel import prepare_match_stream, resolve_impl

    stream = RandomStream(derive_seed(seed, f"match:{edge_name}"))
    order = stream.substream("arrival").permutation(
        structure.num_nodes
    )
    if counts_tables is None:
        counts_tables = resolve_impl("auto") == "numpy"
    return prepare_match_stream(
        structure, order, counts_tables=counts_tables
    )


def match_edge(
    edge,
    seed,
    task_id,
    structure,
    tail_count,
    head_count,
    tail_pt=None,
    head_pt=None,
    prep=None,
):
    """Assign final node ids to a structure (the matching step).

    Parameters
    ----------
    edge:
        the :class:`~repro.core.schema.EdgeType` being matched.
    seed, task_id:
        root seed and ``"match:<edge>"`` — the stream derivation.
    structure:
        the pre-matching :class:`~repro.tables.EdgeTable`.
    tail_count, head_count:
        instance counts of the endpoint types (the id spaces matched
        into).
    tail_pt, head_pt:
        correlated property tables, when ``edge.correlation`` asks for
        them.
    prep:
        optional :class:`~repro.core.matching.kernel.MatchPrep` built
        by :func:`match_prepare` (carries the arrival order, so it is
        bit-identical to computing it here).

    Returns
    -------
    (EdgeTable, match_result):
        the final edge table and the matcher diagnostics (``None`` for
        random/permutation matching).
    """
    stream = RandomStream(derive_seed(seed, task_id))
    corr = edge.correlation

    if edge.cardinality in (
        Cardinality.ONE_TO_MANY, Cardinality.ONE_TO_ONE
    ):
        # Strict-cardinality edges: tails are matched to tail-type
        # ids (randomly — a permutation preserves the degree
        # distribution), heads keep identity (they *define* the head
        # instances).
        if structure.num_tail_nodes > tail_count:
            raise SchemaError(
                f"edge {edge.name!r}: structure has more tails than "
                f"{edge.tail_type!r} instances"
            )
        perm = stream.substream("tails").permutation(tail_count)
        tail_map = perm[:structure.num_tail_nodes]
        head_map = np.arange(structure.num_head_nodes, dtype=np.int64)
        return structure.relabeled(tail_map, head_map), None

    if not edge.is_monopartite:
        if corr is None or corr.head_property is None:
            # Uncorrelated bipartite many-to-many: permute each side.
            tail_map = stream.substream("tails").permutation(
                tail_count
            )[:structure.num_tail_nodes]
            head_map = stream.substream("heads").permutation(
                head_count
            )[:structure.num_head_nodes]
            return structure.relabeled(tail_map, head_map), None
        match = bipartite_sbm_part_match(
            tail_pt,
            head_pt,
            np.asarray(corr.joint, dtype=np.float64),
            structure,
            order=stream.substream("arrival").permutation(
                structure.num_tail_nodes + structure.num_head_nodes
            ),
        )
        final = structure.relabeled(
            match.tail_mapping, match.head_mapping
        )
        return final, match

    # Monopartite many-to-many.
    if structure.num_nodes > tail_count:
        raise SchemaError(
            f"edge {edge.name!r}: structure has {structure.num_nodes}"
            f" nodes but {edge.tail_type!r} has {tail_count} instances"
        )
    if corr is None:
        pt_ids = PropertyTable(
            edge.name, np.arange(tail_count, dtype=np.int64)
        )
        mapping = random_match(
            pt_ids, structure, seed=derive_seed(seed, task_id)
        )
        return structure.relabeled(mapping), None
    _, categories = tail_pt.codes()
    joint = align_joint(corr.joint, list(categories), corr.values)
    if prep is None:
        order = stream.substream("arrival").permutation(
            structure.num_nodes
        )
    else:
        order = prep.order  # same permutation, built by match_prepare
    match = sbm_part_match(
        tail_pt,
        joint,
        structure,
        order=order,
        tie_stream=stream.substream("ties"),
        prep=prep,
    )
    return structure.relabeled(match.mapping), match


def align_joint(joint, categories, values):
    """Reorder a joint's matrix into sorted-category order.

    The declared joint may cover values that happen not to occur in
    the generated PT (small scale factors); those rows/columns are
    dropped and the matrix renormalised.  Observed values missing
    from the declaration are an error.
    """
    from ..stats import JointDistribution

    if values is None:
        return joint
    values = list(values)
    position = {v: i for i, v in enumerate(values)}
    unknown = [c for c in categories if c not in position]
    if unknown:
        raise SchemaError(
            "property values not covered by the correlation "
            f"declaration: {unknown!r}"
        )
    perm = np.array(
        [position[c] for c in categories], dtype=np.int64
    )
    matrix = np.asarray(
        joint.matrix if isinstance(joint, JointDistribution) else joint,
        dtype=np.float64,
    )
    reordered = matrix[np.ix_(perm, perm)]
    if reordered.sum() <= 0:
        raise SchemaError(
            "correlation joint has no mass on the observed values"
        )
    if isinstance(joint, JointDistribution):
        return JointDistribution(reordered)
    return reordered / reordered.sum()


# -- input extraction (runs in the coordinating process) ---------------------


def resolve_count(schema, scale, task, structures):
    """Instance count of a node type: scale anchor or structure size."""
    name = task.subject
    if name in scale:
        return int(scale[name])
    # Inferred from a structure task (listed as the dependency).
    for dep in task.depends_on:
        if dep.startswith("structure:"):
            edge_name = dep[len("structure:"):]
            edge = schema.edge_type(edge_name)
            table = structures[edge_name]
            if edge.head_type == name:
                return table.num_head_nodes
            return table.num_tail_nodes
    raise DependencyError(f"count task for {name!r} has no source")


def structure_inputs(schema, scale, seed, task, node_counts):
    """-> ``(spec, sg_seed, n)`` for :func:`generate_structure`.

    Resolves the ``n`` to call ``run`` with (Section 4.2): an edge-count
    anchor is inverted through ``get_num_nodes`` ("use the result to
    size the graph structure and the number of Persons"); otherwise the
    tail type's instance count is used.  ``get_num_nodes`` is stateless,
    so sizing here and generating in a worker stays bit-identical.
    """
    edge = schema.edge_type(task.subject)
    if edge.structure is None:
        raise SchemaError(
            f"edge type {edge.name!r}: no structure generator declared"
        )
    sg_seed = derive_seed(seed, task.task_id)
    if edge.name in scale:
        generator = create_generator(
            edge.structure.name, seed=sg_seed, **edge.structure.params
        )
        n = generator.get_num_nodes(int(scale[edge.name]))
    else:
        n = node_counts[edge.tail_type]
    return edge.structure, sg_seed, n


def node_property_inputs(schema, task, result):
    """-> ``(spec, count, dep_arrays)`` for a node property task."""
    type_name, prop_name = task.subject.split(".", 1)
    node_type = schema.node_type(type_name)
    prop = node_type.property_named(prop_name)
    if prop.generator is None:
        raise SchemaError(
            f"{task.subject}: no property generator declared"
        )
    count = result.node_counts[type_name]
    dep_arrays = [
        result.node_property(type_name, dep).values
        for dep in prop.depends_on
    ]
    return prop.generator, count, dep_arrays


def edge_property_inputs(schema, task, result):
    """-> ``(spec, count, dep_arrays)`` for an edge property task.

    Endpoint-property dependencies (``tail.x`` / ``head.x``) are
    gathered through the final edge table so the per-edge dependency
    columns line up with edge ids.
    """
    edge_name, prop_name = task.subject.split(".", 1)
    edge = schema.edge_type(edge_name)
    prop = edge.property_named(prop_name)
    if prop.generator is None:
        raise SchemaError(
            f"{task.subject}: no property generator declared"
        )
    table = result.edge_tables[edge_name]
    dep_arrays = []
    for dep in prop.depends_on:
        if dep.startswith("tail."):
            pt = result.node_property(edge.tail_type, dep[len("tail."):])
            dep_arrays.append(pt.gather(table.tails))
        elif dep.startswith("head."):
            pt = result.node_property(edge.head_type, dep[len("head."):])
            dep_arrays.append(pt.gather(table.heads))
        else:
            dep_arrays.append(
                result.edge_property(edge_name, dep).values
            )
    return prop.generator, len(table), dep_arrays


def match_inputs(schema, task, result, structures):
    """-> kwargs for :func:`match_edge` (minus seed/task_id)."""
    edge = schema.edge_type(task.subject)
    structure = structures[edge.name]
    tail_pt = head_pt = None
    strict = edge.cardinality in (
        Cardinality.ONE_TO_MANY, Cardinality.ONE_TO_ONE
    )
    # Strict-cardinality matching ignores correlations, so don't ship
    # the property tables into the kernel (they'd be pickled for
    # nothing on the process backend).
    if edge.correlation is not None and not strict:
        corr = edge.correlation
        tail_pt = result.node_property(
            edge.tail_type, corr.tail_property
        )
        if corr.head_property is not None:
            head_pt = result.node_property(
                edge.head_type, corr.head_property
            )
    return {
        "edge": edge,
        "structure": structure,
        "tail_count": result.node_counts[edge.tail_type],
        "head_count": result.node_counts[edge.head_type],
        "tail_pt": tail_pt,
        "head_pt": head_pt,
        "prep": structures.get(_PREP_KEY + edge.name),
    }


# -- integration --------------------------------------------------------------


def store_task_output(task, result, structures, output):
    """Write one task's kernel output into the result graph."""
    if task.kind == "count":
        result.node_counts[task.subject] = output
    elif task.kind == "property":
        result.node_properties[task.subject] = PropertyTable(
            task.subject, output
        )
    elif task.kind == "structure":
        structures[task.subject] = output
    elif task.kind == "match_prepare":
        structures[_PREP_KEY + task.subject] = output
    elif task.kind == "match":
        table, match = output
        result.edge_tables[task.subject] = table
        result.match_results[task.subject] = match
    elif task.kind == "edge_property":
        result.edge_properties[task.subject] = PropertyTable(
            task.subject, output
        )
    else:  # pragma: no cover - guarded by build_task_graph
        raise DependencyError(f"unknown task kind {task.kind!r}")


#: task kind -> the sink event it maps to.  ``structure`` outputs are
#: pre-matching intermediates and are never exported.
_EXPORT_EVENTS = {
    "count": "count",
    "property": "node_property",
    "match": "edge_table",
    "edge_property": "edge_property",
}


def export_task_output(task, sink):
    """Announce one completed task to a streaming export sink.

    Both engines call this in *serial plan order* — each task only
    after every plan-order predecessor has completed — which is the
    ordering guarantee sinks rely on to flush record-oriented files at
    the earliest correct moment (see
    :class:`repro.io.streaming.GraphSink`).  The sink reads the task's
    table out of the result graph it was attached to via ``begin`` and
    streams it in id-range chunks, so export overlaps generation
    without re-materialising any table.
    """
    if sink is None:
        return
    event = _EXPORT_EVENTS.get(task.kind)
    if event is not None:
        sink.on_table(event, task.subject)


def apply_task(task, schema, scale, seed, result, structures):
    """Run one task inline and integrate it — the serial engine's step."""
    if task.kind == "count":
        output = resolve_count(schema, scale, task, structures)
    elif task.kind == "property":
        spec, count, deps = node_property_inputs(schema, task, result)
        output = property_shard_values(
            spec, task.task_id, seed, 0, count, deps
        )
    elif task.kind == "structure":
        spec, sg_seed, n = structure_inputs(
            schema, scale, seed, task, result.node_counts
        )
        output = generate_structure(spec, sg_seed, n)
    elif task.kind == "match_prepare":
        output = match_prepare(
            seed, task.subject, structures[task.subject]
        )
    elif task.kind == "match":
        output = match_edge(
            seed=seed,
            task_id=task.task_id,
            **match_inputs(schema, task, result, structures),
        )
    elif task.kind == "edge_property":
        spec, count, deps = edge_property_inputs(schema, task, result)
        output = property_shard_values(
            spec, task.task_id, seed, 0, count, deps
        )
    else:  # pragma: no cover - guarded by build_task_graph
        raise DependencyError(f"unknown task kind {task.kind!r}")
    store_task_output(task, result, structures, output)
