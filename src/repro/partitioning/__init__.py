"""Streaming graph partitioning substrate (LDG and friends)."""

from .hashing import capacity_respecting_random_partition, hash_partition
from .ldg import ldg_partition
from .metrics import balance, cut_fraction, edge_cut, mixing_matrix
from .streams import arrival_order

__all__ = [
    "arrival_order",
    "balance",
    "capacity_respecting_random_partition",
    "cut_fraction",
    "edge_cut",
    "hash_partition",
    "ldg_partition",
    "mixing_matrix",
]
