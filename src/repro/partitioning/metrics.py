"""Partition quality metrics: edge cut, balance, group mixing matrix."""

from __future__ import annotations

import numpy as np

__all__ = ["edge_cut", "cut_fraction", "balance", "mixing_matrix"]


def edge_cut(table, assignment):
    """Number of edges whose endpoints fall into different partitions."""
    assignment = np.asarray(assignment, dtype=np.int64)
    return int(
        (assignment[table.tails] != assignment[table.heads]).sum()
    )


def cut_fraction(table, assignment):
    """Edge cut as a fraction of all edges."""
    if table.num_edges == 0:
        return 0.0
    return edge_cut(table, assignment) / table.num_edges


def balance(assignment, k=None):
    """Normalised maximum load: ``max_t s_t / (n / k)``.

    1.0 is perfectly balanced; larger values indicate skew.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.size == 0:
        return 1.0
    if k is None:
        k = int(assignment.max()) + 1
    loads = np.bincount(assignment, minlength=k)
    return float(loads.max() / (assignment.size / k))


def mixing_matrix(table, assignment, k=None):
    """Edge counts between partition pairs: the ``W`` of Section 4.2.

    Returns the symmetric ``(k, k)`` matrix where entry ``(i, j)``,
    ``i != j``, counts edges between groups i and j (appearing in both
    symmetric slots), and ``(i, i)`` counts intra-group edges once.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    if k is None:
        k = int(assignment.max()) + 1 if assignment.size else 1
    w = np.zeros((k, k), dtype=np.float64)
    lt = assignment[table.tails]
    lh = assignment[table.heads]
    lo = np.minimum(lt, lh)
    hi = np.maximum(lt, lh)
    np.add.at(w, (lo, hi), 1.0)
    # Mirror the strict upper triangle.
    upper = np.triu(w, k=1)
    w = w + upper.T
    return w
