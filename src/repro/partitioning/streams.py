"""Node arrival orders for streaming algorithms.

Streaming partitioners are order-sensitive; the paper sends nodes to
SBM-Part "randomly".  The ablation benchmarks compare random, BFS and
degree-sorted arrival, all generated here deterministically.
"""

from __future__ import annotations

import numpy as np

from ..graphstats.components import bfs_distances

__all__ = ["arrival_order"]


def arrival_order(table, kind, stream=None):
    """Produce a node arrival order.

    Parameters
    ----------
    table:
        the graph.
    kind:
        ``"natural"`` (0..n-1), ``"random"`` (the paper's choice),
        ``"bfs"`` (breadth-first from a pseudo-random seed node, with
        unreachable nodes appended), ``"degree_desc"`` or
        ``"degree_asc"``.
    stream:
        :class:`~repro.prng.RandomStream` required for "random" and used
        to pick the BFS source.
    """
    n = table.num_nodes
    if kind == "natural":
        return np.arange(n, dtype=np.int64)
    if kind == "random":
        if stream is None:
            raise ValueError("random order needs a stream")
        return stream.permutation(n)
    if kind == "bfs":
        if n == 0:
            return np.empty(0, dtype=np.int64)
        source = 0
        if stream is not None:
            source = int(stream.randint(np.int64(0), 0, n))
        dist = bfs_distances(table, source)
        reachable = dist >= 0
        order_reachable = np.argsort(
            dist[reachable], kind="stable"
        )
        ids = np.arange(n, dtype=np.int64)
        return np.concatenate(
            [ids[reachable][order_reachable], ids[~reachable]]
        )
    if kind == "degree_desc":
        return np.argsort(-table.degrees(), kind="stable").astype(np.int64)
    if kind == "degree_asc":
        return np.argsort(table.degrees(), kind="stable").astype(np.int64)
    raise ValueError(
        f"unknown arrival order {kind!r}; expected natural/random/bfs/"
        "degree_desc/degree_asc"
    )
