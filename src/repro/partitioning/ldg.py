"""LDG streaming graph partitioning (Stanton & Kliot, KDD 2012).

LDG ("Linear Deterministic Greedy") streams nodes with their edges and
places each node into the partition holding most of its already-placed
neighbours, weighted by the partition's remaining capacity
``(1 - s_t / q_t)``.  SBM-Part (Section 4.2) is "a variation of LDG":
it replaces the neighbour-count objective with the Frobenius-norm
objective against an SBM target.

This implementation is the *original* LDG.  The paper's evaluation uses
it twice: to create the ground-truth labelling of the input graphs
("we partitioned each of the graphs g into k groups ... using LDG"),
and — in our ablations — as a matching baseline.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ldg_partition"]


def ldg_partition(table, capacities, order=None, tie_stream=None):
    """Partition the nodes of ``table`` into groups of given capacities.

    Parameters
    ----------
    table:
        :class:`~repro.tables.EdgeTable` (monopartite).
    capacities:
        ``(k,)`` integer capacity per partition; must sum to >= n.
    order:
        node arrival order (default: natural order ``0..n-1``).
    tie_stream:
        :class:`~repro.prng.RandomStream` used to break score ties;
        deterministic round-robin when omitted.

    Returns
    -------
    (n,) int64 partition label per node.
    """
    capacities = np.asarray(capacities, dtype=np.int64)
    if capacities.ndim != 1 or capacities.size == 0:
        raise ValueError("capacities must be a non-empty 1-D array")
    if (capacities < 0).any():
        raise ValueError("capacities must be nonnegative")
    n = table.num_nodes
    if int(capacities.sum()) < n:
        raise ValueError(
            f"capacities sum to {int(capacities.sum())} < n = {n}"
        )
    k = capacities.size
    if order is None:
        order = np.arange(n, dtype=np.int64)
    else:
        order = np.asarray(order, dtype=np.int64)
        if order.size != n:
            raise ValueError("order must enumerate all n nodes")

    indptr, neighbors, _ = table.adjacency_csr()
    assignment = np.full(n, -1, dtype=np.int64)
    loads = np.zeros(k, dtype=np.int64)
    caps = capacities.astype(np.float64)
    neighbor_counts = np.zeros(k, dtype=np.float64)

    for step, v in enumerate(order):
        nbrs = neighbors[indptr[v]:indptr[v + 1]]
        placed = assignment[nbrs]
        placed = placed[placed >= 0]
        neighbor_counts[:] = 0.0
        if placed.size:
            np.add.at(neighbor_counts, placed, 1.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            weight = np.where(caps > 0, 1.0 - loads / caps, -np.inf)
        scores = neighbor_counts * weight
        scores[loads >= capacities] = -np.inf
        best = float(scores.max())
        if not np.isfinite(best):
            raise RuntimeError("no partition with remaining capacity")
        candidates = np.flatnonzero(scores == best)
        if candidates.size == 1:
            choice = int(candidates[0])
        elif tie_stream is not None:
            pick = int(tie_stream.randint(np.int64(step), 0, candidates.size))
            choice = int(candidates[pick])
        else:
            # Deterministic tie-break: the least-loaded candidate.
            choice = int(candidates[np.argmin(loads[candidates])])
        assignment[v] = choice
        loads[choice] += 1
    return assignment
