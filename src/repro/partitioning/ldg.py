"""LDG streaming graph partitioning (Stanton & Kliot, KDD 2012).

LDG ("Linear Deterministic Greedy") streams nodes with their edges and
places each node into the partition holding most of its already-placed
neighbours, weighted by the partition's remaining capacity
``(1 - s_t / q_t)``.  SBM-Part (Section 4.2) is "a variation of LDG":
it replaces the neighbour-count objective with the Frobenius-norm
objective against an SBM target.

This implementation is the *original* LDG.  The paper's evaluation uses
it twice: to create the ground-truth labelling of the input graphs
("we partitioned each of the graphs g into k groups ... using LDG"),
and — in our ablations — as a matching baseline.

The per-node loop runs on the shared streaming-placement kernel
(:mod:`repro.core.matching.kernel`): neighbour counts come from the
streaming counts matrix, buffers are preallocated, and a compiled C
loop takes over when a system compiler is available.  The original
loop is preserved in :mod:`repro.core.matching.legacy` and the kernel
is pinned byte-for-byte against it by ``tests/golden/matching/``.
"""

from __future__ import annotations

__all__ = ["ldg_partition"]


def ldg_partition(table, capacities, order=None, tie_stream=None,
                  impl="auto", prep=None):
    """Partition the nodes of ``table`` into groups of given capacities.

    Parameters
    ----------
    table:
        :class:`~repro.tables.EdgeTable` (monopartite).
    capacities:
        ``(k,)`` integer capacity per partition; must sum to >= n.
    order:
        node arrival order (default: natural order ``0..n-1``).
    tie_stream:
        :class:`~repro.prng.RandomStream` used to break score ties;
        deterministic round-robin when omitted.
    impl:
        kernel implementation: "auto" (default), "numpy" or "c".
    prep:
        optional precomputed
        :class:`~repro.core.matching.kernel.MatchPrep` for this
        ``(table, order)`` pair.

    Returns
    -------
    (n,) int64 partition label per node.
    """
    from ..core.matching.kernel import ldg_stream

    return ldg_stream(
        table, capacities, order=order, tie_stream=tie_stream,
        impl=impl, prep=prep,
    )
