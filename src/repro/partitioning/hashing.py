"""Hash partitioning: the zero-information baseline."""

from __future__ import annotations

import numpy as np

from ..prng import RandomStream

__all__ = ["hash_partition", "capacity_respecting_random_partition"]


def hash_partition(n, k, seed=0):
    """Assign each node to ``mix(node) % k`` — unbalanced, structure-blind."""
    if k < 1:
        raise ValueError("k must be >= 1")
    stream = RandomStream(seed, "hash_partition")
    return (stream.raw(np.arange(n, dtype=np.int64))
            % np.uint64(k)).astype(np.int64)


def capacity_respecting_random_partition(capacities, seed=0):
    """Random assignment that exactly fills the given capacities.

    Produces a deterministic pseudo-random permutation of the label
    multiset ``[0]*q0 + [1]*q1 + ...`` — the "matching is done randomly"
    path of the paper for uncorrelated edge types.
    """
    capacities = np.asarray(capacities, dtype=np.int64)
    if (capacities < 0).any():
        raise ValueError("capacities must be nonnegative")
    labels = np.repeat(
        np.arange(capacities.size, dtype=np.int64), capacities
    )
    stream = RandomStream(seed, "random_partition")
    return labels[stream.permutation(labels.size)]
