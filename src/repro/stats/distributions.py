"""Discrete probability distributions used across the generator.

The paper's requirements section asks for user-provided property value
distributions ("Person's country follows a P_country(X) distribution
similar to that found in real life") and for structural distributions
(power-law degree distributions, truncated geometric group sizes in the
evaluation).  This module provides a small, composable family of discrete
distributions with a uniform interface:

``pmf()``
    probability vector over the support,
``sample(stream, index)``
    deterministic inverse-transform sampling driven by a
    :class:`~repro.prng.RandomStream` (preserving in-place generation),
``sizes(n)``
    the paper's evaluation trick of converting a distribution over ``k``
    categories into integer group sizes summing to ``n``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Distribution",
    "Categorical",
    "Uniform",
    "Geometric",
    "TruncatedGeometric",
    "Zipf",
    "PowerLaw",
    "Poisson",
    "Empirical",
    "Constant",
]


class Distribution:
    """A finite discrete distribution over ``range(k)``.

    Subclasses implement :meth:`pmf`; everything else derives from it.
    """

    def pmf(self):
        """Return the probability vector (1-D float64, sums to 1)."""
        raise NotImplementedError

    @property
    def k(self):
        """Size of the support."""
        return len(self.pmf())

    def cdf(self):
        """Cumulative distribution over the support."""
        return np.cumsum(self.pmf())

    def sample(self, stream, index):
        """Inverse-transform sample at positions ``index`` of ``stream``.

        Deterministic: ``sample(stream, i)`` is a pure function of the
        stream seed and ``i``, as required by the PG contract.
        """
        u = stream.uniform(index)
        return np.searchsorted(self.cdf(), u, side="right").astype(np.int64)

    def sizes(self, n):
        """Split ``n`` items into group sizes proportional to the pmf.

        Uses the largest-remainder method so the sizes are integers, sum
        exactly to ``n``, and every group with positive probability gets
        at least the floor of its quota.
        """
        p = self.pmf()
        quota = p * n
        base = np.floor(quota).astype(np.int64)
        remainder = n - int(base.sum())
        if remainder:
            frac_order = np.argsort(-(quota - base), kind="stable")
            base[frac_order[:remainder]] += 1
        return base

    def mean(self):
        """Expected value, treating the support as ``0..k-1``."""
        p = self.pmf()
        return float(np.dot(np.arange(len(p)), p))

    def entropy(self):
        """Shannon entropy in nats."""
        p = self.pmf()
        nz = p[p > 0]
        return float(-(nz * np.log(nz)).sum())


class Categorical(Distribution):
    """Explicit probability vector (normalised on construction)."""

    def __init__(self, weights):
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 1 or w.size == 0:
            raise ValueError("weights must be a non-empty 1-D sequence")
        if (w < 0).any():
            raise ValueError("weights must be nonnegative")
        total = w.sum()
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self._pmf = w / total

    def pmf(self):
        return self._pmf


class Uniform(Distribution):
    """Uniform distribution over ``k`` categories."""

    def __init__(self, k):
        if k < 1:
            raise ValueError("k must be >= 1")
        self._k = int(k)

    def pmf(self):
        return np.full(self._k, 1.0 / self._k)


class Geometric(Distribution):
    """Geometric distribution truncated to ``k`` categories.

    ``P(i) ∝ p (1 - p)^i`` for ``i`` in ``0..k-1``.
    """

    def __init__(self, p, k):
        if not 0 < p < 1:
            raise ValueError("p must be in (0, 1)")
        if k < 1:
            raise ValueError("k must be >= 1")
        self.p = float(p)
        self._k = int(k)

    def pmf(self):
        i = np.arange(self._k)
        w = self.p * (1.0 - self.p) ** i
        return w / w.sum()


class TruncatedGeometric(Distribution):
    """The paper's evaluation group-size distribution (Section 4.2).

    The size of the ``i``-th group is proportional to
    ``max(geo(p, i), 1/k)``: geometric, but floored at the uniform share so
    no group is vanishingly small.  The paper uses ``p = 0.4``.
    """

    def __init__(self, p, k):
        if not 0 < p < 1:
            raise ValueError("p must be in (0, 1)")
        if k < 1:
            raise ValueError("k must be >= 1")
        self.p = float(p)
        self._k = int(k)

    def pmf(self):
        k = self._k
        i = np.arange(k)
        geo = self.p * (1.0 - self.p) ** i
        w = np.maximum(geo, 1.0 / k)
        return w / w.sum()


class Zipf(Distribution):
    """Zipf (discrete power-law rank) distribution: ``P(i) ∝ (i+1)^-s``."""

    def __init__(self, s, k):
        if s <= 0:
            raise ValueError("exponent s must be positive")
        if k < 1:
            raise ValueError("k must be >= 1")
        self.s = float(s)
        self._k = int(k)

    def pmf(self):
        ranks = np.arange(1, self._k + 1, dtype=np.float64)
        w = ranks ** (-self.s)
        return w / w.sum()


class PowerLaw(Distribution):
    """Power-law over an integer value range ``[xmin, xmax]``.

    ``P(x) ∝ x^-gamma``; used for degree sequences and community sizes
    (the LFR generator's two power laws).  The support is shifted so that
    category ``i`` corresponds to the value ``xmin + i``; use
    :meth:`values` to recover actual values.
    """

    def __init__(self, gamma, xmin, xmax):
        if xmin < 1 or xmax < xmin:
            raise ValueError("need 1 <= xmin <= xmax")
        self.gamma = float(gamma)
        self.xmin = int(xmin)
        self.xmax = int(xmax)

    def values(self):
        """The integer values the categories stand for."""
        return np.arange(self.xmin, self.xmax + 1, dtype=np.int64)

    def pmf(self):
        x = self.values().astype(np.float64)
        w = x ** (-self.gamma)
        return w / w.sum()

    def sample_values(self, stream, index):
        """Sample actual values (not category indices)."""
        return self.sample(stream, index) + self.xmin

    def mean_value(self):
        """Expected value over the actual support."""
        return float(np.dot(self.values(), self.pmf()))


class Poisson(Distribution):
    """Poisson distribution truncated to ``0..k-1`` and renormalised."""

    def __init__(self, lam, k):
        if lam <= 0:
            raise ValueError("lambda must be positive")
        if k < 1:
            raise ValueError("k must be >= 1")
        self.lam = float(lam)
        self._k = int(k)

    def pmf(self):
        from scipy.stats import poisson

        w = poisson.pmf(np.arange(self._k), self.lam)
        total = w.sum()
        if total <= 0:
            raise ValueError("truncation removed all mass; increase k")
        return w / total


class Empirical(Distribution):
    """Distribution estimated from observed category counts or samples."""

    def __init__(self, counts):
        c = np.asarray(counts, dtype=np.float64)
        if c.ndim != 1 or c.size == 0:
            raise ValueError("counts must be a non-empty 1-D sequence")
        if (c < 0).any():
            raise ValueError("counts must be nonnegative")
        total = c.sum()
        if total <= 0:
            raise ValueError("counts must sum to a positive value")
        self._pmf = c / total

    @classmethod
    def from_samples(cls, samples, k=None):
        """Build from raw category samples (integers)."""
        samples = np.asarray(samples, dtype=np.int64)
        if samples.size == 0:
            raise ValueError("need at least one sample")
        size = int(samples.max()) + 1 if k is None else int(k)
        counts = np.bincount(samples, minlength=size)
        return cls(counts)

    def pmf(self):
        return self._pmf


class Constant(Distribution):
    """Degenerate distribution: all mass on one category."""

    def __init__(self, value, k):
        if not 0 <= value < k:
            raise ValueError("value must lie in [0, k)")
        self.value = int(value)
        self._k = int(k)

    def pmf(self):
        p = np.zeros(self._k)
        p[self.value] = 1.0
        return p
