"""Distribution comparison metrics for the evaluation (Figures 3 and 4).

The paper compares the *expected* joint distribution ``P(X, Y)`` with the
*observed* ``P'(X, Y)`` after matching, by plotting both CDFs over the
value pairs sorted by decreasing expected probability.  This module
computes exactly those sorted-CDF series plus scalar summary metrics
(Kolmogorov-Smirnov distance on the sorted CDFs, L1 / total-variation on
the pmfs, Frobenius distance on the matrices).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "CdfComparison",
    "compare_joints",
    "ks_distance",
    "l1_distance",
    "total_variation",
    "frobenius_distance",
    "jensen_shannon",
]


def ks_distance(cdf_a, cdf_b):
    """Maximum absolute difference between two aligned CDF series."""
    a = np.asarray(cdf_a, dtype=np.float64)
    b = np.asarray(cdf_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("CDF series must have the same shape")
    if a.size == 0:
        return 0.0
    return float(np.abs(a - b).max())


def l1_distance(pmf_a, pmf_b):
    """Sum of absolute pmf differences (twice the total variation)."""
    a = np.asarray(pmf_a, dtype=np.float64)
    b = np.asarray(pmf_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("pmf series must have the same shape")
    return float(np.abs(a - b).sum())


def total_variation(pmf_a, pmf_b):
    """Total variation distance ``0.5 * L1``."""
    return 0.5 * l1_distance(pmf_a, pmf_b)


def frobenius_distance(mat_a, mat_b):
    """Frobenius norm of the matrix difference (SBM-Part's objective)."""
    a = np.asarray(mat_a, dtype=np.float64)
    b = np.asarray(mat_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("matrices must have the same shape")
    return float(np.linalg.norm(a - b, ord="fro"))


def jensen_shannon(pmf_a, pmf_b):
    """Jensen-Shannon divergence (base e), a smoothed symmetric KL."""
    a = np.asarray(pmf_a, dtype=np.float64)
    b = np.asarray(pmf_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("pmf series must have the same shape")
    mid = (a + b) / 2.0

    def _kl(p, q):
        mask = p > 0
        return float((p[mask] * np.log(p[mask] / q[mask])).sum())

    return 0.5 * _kl(a, mid) + 0.5 * _kl(b, mid)


@dataclass
class CdfComparison:
    """The expected-vs-observed comparison the paper plots.

    Attributes
    ----------
    pairs:
        ``(n_pairs, 2)`` unordered value pairs, sorted by decreasing
        expected probability (the x axis of Figures 3 and 4).
    expected_pmf, observed_pmf:
        pmf series in that order.
    expected_cdf, observed_cdf:
        cumulative series in that order (the plotted curves).
    """

    pairs: np.ndarray
    expected_pmf: np.ndarray
    observed_pmf: np.ndarray
    expected_cdf: np.ndarray = field(init=False)
    observed_cdf: np.ndarray = field(init=False)

    def __post_init__(self):
        self.expected_cdf = np.cumsum(self.expected_pmf)
        self.observed_cdf = np.cumsum(self.observed_pmf)

    @property
    def ks(self):
        """KS distance between the two plotted CDFs."""
        return ks_distance(self.expected_cdf, self.observed_cdf)

    @property
    def l1(self):
        """L1 distance between the pmfs."""
        return l1_distance(self.expected_pmf, self.observed_pmf)

    @property
    def tv(self):
        """Total-variation distance between the pmfs."""
        return total_variation(self.expected_pmf, self.observed_pmf)

    @property
    def js(self):
        """Jensen-Shannon divergence between the pmfs."""
        return jensen_shannon(self.expected_pmf, self.observed_pmf)

    def series(self, points=None):
        """Return ``(x, expected_cdf, observed_cdf)`` optionally subsampled.

        Useful for printing a bench table without emitting thousands of
        rows; ``points`` evenly-spaced positions are kept (always
        including the last).
        """
        n = len(self.expected_cdf)
        if points is None or points >= n:
            idx = np.arange(n)
        else:
            idx = np.unique(
                np.concatenate(
                    [np.linspace(0, n - 1, points).astype(np.int64), [n - 1]]
                )
            )
        return idx, self.expected_cdf[idx], self.observed_cdf[idx]

    def summary(self):
        """Scalar metrics as a plain dict (for EXPERIMENTS.md tables)."""
        return {"ks": self.ks, "l1": self.l1, "tv": self.tv, "js": self.js}


def compare_joints(expected, observed):
    """Build the paper's sorted-CDF comparison from two joints.

    Parameters
    ----------
    expected, observed:
        :class:`~repro.stats.joint.JointDistribution` objects with the
        same number of categories.

    Returns
    -------
    CdfComparison
        with pairs sorted by decreasing *expected* probability, which is
        the convention of Figures 3 and 4 ("sorted by decreasing
        probability in the expected CDF, for both distributions").
    """
    if expected.k != observed.k:
        raise ValueError(
            f"joint distributions have different k: {expected.k} vs {observed.k}"
        )
    pairs, exp_pmf = expected.pair_pmf()
    _, obs_pmf = observed.pair_pmf()
    order = np.argsort(-exp_pmf, kind="stable")
    return CdfComparison(
        pairs=pairs[order],
        expected_pmf=exp_pmf[order],
        observed_pmf=obs_pmf[order],
    )
