"""Statistics substrate: distributions, joints and comparison metrics."""

from .comparison import (
    CdfComparison,
    compare_joints,
    frobenius_distance,
    jensen_shannon,
    ks_distance,
    l1_distance,
    total_variation,
)
from .distributions import (
    Categorical,
    Constant,
    Distribution,
    Empirical,
    Geometric,
    Poisson,
    PowerLaw,
    TruncatedGeometric,
    Uniform,
    Zipf,
)
from .fitting import (
    empirical_degree_distribution,
    fit_power_law,
    fit_power_law_exponent,
    rescale_degree_sequence,
)
from .joint import JointDistribution, empirical_joint, homophily_joint
from .multivalue import empirical_multivalue_joint, encode_value_sets

__all__ = [
    "Categorical",
    "CdfComparison",
    "Constant",
    "Distribution",
    "Empirical",
    "Geometric",
    "JointDistribution",
    "Poisson",
    "PowerLaw",
    "TruncatedGeometric",
    "Uniform",
    "Zipf",
    "compare_joints",
    "empirical_degree_distribution",
    "empirical_joint",
    "empirical_multivalue_joint",
    "encode_value_sets",
    "fit_power_law",
    "fit_power_law_exponent",
    "frobenius_distance",
    "homophily_joint",
    "jensen_shannon",
    "ks_distance",
    "l1_distance",
    "rescale_degree_sequence",
    "total_variation",
]
