"""Joint distributions ``P(X, Y)`` over property values of edge endpoints.

The property-structure correlation at the heart of the paper is modelled
as "the probability of picking a random edge of the graph and observing
property values X and Y in its endpoints" (Section 4.2).  For undirected
edges this is a symmetric distribution over unordered pairs; we keep the
matrix symmetric with the off-diagonal mass split across ``(i, j)`` and
``(j, i)`` so that ``P.sum() == 1`` and ``P[i, j] == P[j, i]``.

This module provides construction (homophily models, empirical
measurement from a labelled graph), conversion to SBM edge-count and
edge-probability targets, and marginals.
"""

from __future__ import annotations

import numpy as np

__all__ = ["JointDistribution", "empirical_joint", "homophily_joint"]


class JointDistribution:
    """A symmetric joint distribution over pairs of category values.

    Parameters
    ----------
    matrix:
        ``(k, k)`` nonnegative array.  It is symmetrised (averaged with its
        transpose) and normalised to sum to 1.
    """

    def __init__(self, matrix):
        m = np.asarray(matrix, dtype=np.float64)
        if m.ndim != 2 or m.shape[0] != m.shape[1]:
            raise ValueError(f"matrix must be square, got shape {m.shape}")
        if (m < 0).any():
            raise ValueError("matrix entries must be nonnegative")
        total = m.sum()
        if total <= 0:
            raise ValueError("matrix must have positive total mass")
        m = (m + m.T) / 2.0
        self.matrix = m / m.sum()

    @property
    def k(self):
        """Number of categories."""
        return self.matrix.shape[0]

    def marginal(self):
        """Marginal ``P(X)``: probability a random edge *endpoint* has value x.

        For a symmetric joint, the row sum gives the endpoint marginal.
        """
        return self.matrix.sum(axis=1)

    def pair_probability(self, i, j):
        """Probability of observing the unordered value pair ``{i, j}``.

        For ``i != j`` this is ``P[i, j] + P[j, i] = 2 P[i, j]``.
        """
        if i == j:
            return float(self.matrix[i, i])
        return float(2.0 * self.matrix[i, j])

    def pair_pmf(self):
        """Flattened pmf over the ``k (k + 1) / 2`` unordered pairs.

        Returns
        -------
        pairs:
            ``(n_pairs, 2)`` int array of ``(i, j)`` with ``i <= j``.
        pmf:
            matching probability vector (sums to 1).
        """
        k = self.k
        iu, ju = np.triu_indices(k)
        pmf = np.where(iu == ju, self.matrix[iu, ju], 2.0 * self.matrix[iu, ju])
        return np.stack([iu, ju], axis=1), pmf

    # -- SBM conversions ---------------------------------------------------

    def edge_count_target(self, num_edges):
        """Expected *edge counts* between groups for a graph with ``m`` edges.

        Returns the symmetric ``(k, k)`` matrix ``W`` where ``W[i, j]`` for
        ``i != j`` is the expected number of edges between groups i and j
        (so the unordered-pair count appears in full in both entries of the
        symmetric matrix divided evenly: ``W[i, j] = m * P[i, j]``), and
        ``W[i, i] = m * P[i, i]`` is the expected intra-group edge count.

        Frobenius distances computed on this convention are exactly twice
        the distance on unordered-pair counts for the off-diagonal block,
        which is a fixed scaling and does not change argmins.
        """
        if num_edges < 0:
            raise ValueError("num_edges must be nonnegative")
        return self.matrix * float(num_edges)

    def sbm_probabilities(self, group_sizes, num_edges):
        """Per-pair edge probabilities ``delta_ij`` of the SBM (paper §4.2).

        ``delta_ii = 2 m P(i, i) / (q_i (q_i - 1))`` and
        ``delta_ij = 2 m P(i, j) / (q_i q_j)`` for ``i != j``, clipped to
        ``[0, 1]``.

        Parameters
        ----------
        group_sizes:
            ``(k,)`` integer group sizes ``q_i``.
        num_edges:
            total number of edges ``m``.
        """
        q = np.asarray(group_sizes, dtype=np.float64)
        if q.shape != (self.k,):
            raise ValueError(
                f"group_sizes must have shape ({self.k},), got {q.shape}"
            )
        m = float(num_edges)
        # Unordered pair mass: P(i,j) + P(j,i) = 2 P(i,j), matching
        # the paper's delta_ij = 2mP(i,j)/(qi qj); the diagonal holds
        # intra-group pairs q_i (q_i - 1) / 2 with mass m P(i,i).
        # Same elementwise float64 operations as the former k x k
        # Python loop, computed as whole matrices.
        pairs = np.outer(q, q)
        np.fill_diagonal(pairs, q * (q - 1.0) / 2.0)
        mass = m * 2.0 * self.matrix
        np.fill_diagonal(mass, m * np.diagonal(self.matrix))
        delta = np.divide(
            mass,
            pairs,
            out=np.zeros_like(mass),
            where=pairs > 0,
        )
        return np.clip(delta, 0.0, 1.0)

    def condition_on(self, i):
        """Conditional ``P(Y | X = i)`` as a probability vector."""
        row = self.matrix[i]
        total = row.sum()
        if total <= 0:
            raise ValueError(f"category {i} has zero marginal mass")
        return row / total

    def __repr__(self):
        return f"JointDistribution(k={self.k})"


def empirical_joint(tails, heads, labels, k=None):
    """Measure the empirical joint ``P'(X, Y)`` of a labelled graph.

    This is the measurement step of the paper's evaluation: given an edge
    list and a per-node category label, count the observed value pairs on
    edges and normalise.

    Parameters
    ----------
    tails, heads:
        edge endpoint node-id arrays.
    labels:
        ``(n,)`` integer category per node id.
    k:
        number of categories; inferred from ``labels`` when omitted.
    """
    labels = np.asarray(labels, dtype=np.int64)
    tails = np.asarray(tails, dtype=np.int64)
    heads = np.asarray(heads, dtype=np.int64)
    if tails.shape != heads.shape:
        raise ValueError("tails and heads must have the same shape")
    if k is None:
        k = int(labels.max()) + 1 if labels.size else 1
    lt = labels[tails]
    lh = labels[heads]
    counts = np.zeros((k, k), dtype=np.float64)
    np.add.at(counts, (lt, lh), 1.0)
    np.add.at(counts, (lh, lt), 1.0)
    # Each edge contributed 2 to the matrix total; JointDistribution
    # normalises, so the factor cancels.
    return JointDistribution(counts)


def homophily_joint(marginal, affinity):
    """Build a homophilous joint from a marginal and an affinity knob.

    ``affinity`` in ``[0, 1]`` interpolates between independence
    (``affinity = 0``: ``P[i, j] = p_i p_j``) and perfect homophily
    (``affinity = 1``: all mass on the diagonal, proportional to the
    marginal).  This mirrors the "Persons from the same country are more
    likely to know each other" requirement of the running example.
    """
    p = np.asarray(marginal, dtype=np.float64)
    if p.ndim != 1 or p.size == 0:
        raise ValueError("marginal must be a non-empty 1-D sequence")
    if (p < 0).any() or p.sum() <= 0:
        raise ValueError("marginal must be a nonnegative vector with mass")
    if not 0.0 <= affinity <= 1.0:
        raise ValueError("affinity must lie in [0, 1]")
    p = p / p.sum()
    independent = np.outer(p, p)
    diagonal = np.diag(p)
    return JointDistribution((1.0 - affinity) * independent + affinity * diagonal)
