"""Joint measurement for multi-valued properties (paper §5).

For single-valued properties, the joint ``P(X, Y)`` counts the value
pair at an edge's endpoints.  For multi-valued properties (sets of
values), every cross pair ``(x, y)`` with ``x`` in tail's set and ``y``
in head's set contributes, weighted so each edge has unit total mass —
the natural generalisation used for tag/interest co-occurrence
analysis.
"""

from __future__ import annotations

import numpy as np

from .joint import JointDistribution

__all__ = ["empirical_multivalue_joint", "encode_value_sets"]


def encode_value_sets(sets, universe=None):
    """Map tuples-of-values to tuples-of-codes.

    Returns ``(encoded, universe)`` where ``universe`` lists distinct
    values in first-seen-sorted order and ``encoded[i]`` is an int
    tuple.
    """
    if universe is None:
        seen = set()
        for value_set in sets:
            seen.update(value_set)
        universe = sorted(seen, key=str)
    position = {value: i for i, value in enumerate(universe)}
    encoded = []
    for value_set in sets:
        try:
            encoded.append(
                tuple(position[value] for value in value_set)
            )
        except KeyError as error:
            raise ValueError(
                f"value {error.args[0]!r} outside the declared universe"
            ) from None
    return encoded, list(universe)


def empirical_multivalue_joint(tails, heads, value_sets, k=None):
    """Measure the pairwise joint of multi-valued endpoint labels.

    Parameters
    ----------
    tails, heads:
        edge endpoint node ids.
    value_sets:
        per-node tuples of integer codes (use
        :func:`encode_value_sets` first for raw values).
    k:
        universe size; inferred when omitted.

    Each edge distributes a total mass of 1 uniformly over the
    ``|S_tail| * |S_head|`` cross pairs, keeping edges comparable
    regardless of set sizes.
    """
    tails = np.asarray(tails, dtype=np.int64)
    heads = np.asarray(heads, dtype=np.int64)
    if tails.shape != heads.shape:
        raise ValueError("tails and heads must have the same shape")
    if k is None:
        k = 0
        for value_set in value_sets:
            if value_set:
                k = max(k, max(value_set) + 1)
        k = max(k, 1)
    counts = np.zeros((k, k), dtype=np.float64)
    for tail, head in zip(tails, heads):
        tail_set = value_sets[tail]
        head_set = value_sets[head]
        if not tail_set or not head_set:
            continue
        mass = 1.0 / (len(tail_set) * len(head_set))
        for x in tail_set:
            for y in head_set:
                counts[x, y] += mass
                counts[y, x] += mass
    if counts.sum() <= 0:
        raise ValueError("no labelled edges to measure")
    return JointDistribution(counts)
