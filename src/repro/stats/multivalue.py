"""Joint measurement for multi-valued properties (paper §5).

For single-valued properties, the joint ``P(X, Y)`` counts the value
pair at an edge's endpoints.  For multi-valued properties (sets of
values), every cross pair ``(x, y)`` with ``x`` in tail's set and ``y``
in head's set contributes, weighted so each edge has unit total mass —
the natural generalisation used for tag/interest co-occurrence
analysis.
"""

from __future__ import annotations

import numpy as np

from .joint import JointDistribution

__all__ = ["empirical_multivalue_joint", "encode_value_sets"]


def encode_value_sets(sets, universe=None):
    """Map tuples-of-values to tuples-of-codes.

    Returns ``(encoded, universe)`` where ``universe`` lists distinct
    values in first-seen-sorted order and ``encoded[i]`` is an int
    tuple.
    """
    if universe is None:
        seen = set()
        for value_set in sets:
            seen.update(value_set)
        universe = sorted(seen, key=str)
    position = {value: i for i, value in enumerate(universe)}
    encoded = []
    for value_set in sets:
        try:
            encoded.append(
                tuple(position[value] for value in value_set)
            )
        except KeyError as error:
            raise ValueError(
                f"value {error.args[0]!r} outside the declared universe"
            ) from None
    return encoded, list(universe)


def empirical_multivalue_joint(tails, heads, value_sets, k=None):
    """Measure the pairwise joint of multi-valued endpoint labels.

    Parameters
    ----------
    tails, heads:
        edge endpoint node ids.
    value_sets:
        per-node tuples of integer codes (use
        :func:`encode_value_sets` first for raw values).
    k:
        universe size; inferred when omitted.

    Each edge distributes a total mass of 1 uniformly over the
    ``|S_tail| * |S_head|`` cross pairs, keeping edges comparable
    regardless of set sizes.
    """
    tails = np.asarray(tails, dtype=np.int64)
    heads = np.asarray(heads, dtype=np.int64)
    if tails.shape != heads.shape:
        raise ValueError("tails and heads must have the same shape")
    # Flatten the per-node sets once: codes + offsets (the ragged
    # layout the generators produce), sizes per node.
    sizes = np.fromiter(
        map(len, value_sets), dtype=np.int64, count=len(value_sets)
    )
    offsets = np.zeros(sizes.size + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    flat = np.fromiter(
        (code for value_set in value_sets for code in value_set),
        dtype=np.int64,
        count=int(offsets[-1]),
    )
    if k is None:
        k = max(int(flat.max()) + 1 if flat.size else 1, 1)
    # Every edge contributes its |S_tail| x |S_head| cross pairs; the
    # pair lattice is enumerated with repeat/arange arithmetic instead
    # of nested Python loops — edge-major, tail value then head value,
    # the same order the loops walked.
    tail_sizes = sizes[tails]
    head_sizes = sizes[heads]
    active = (tail_sizes > 0) & (head_sizes > 0)
    tails, heads = tails[active], heads[active]
    tail_sizes, head_sizes = tail_sizes[active], head_sizes[active]
    pair_counts = tail_sizes * head_sizes
    total_pairs = int(pair_counts.sum())
    if total_pairs == 0:
        raise ValueError("no labelled edges to measure")
    pair_starts = np.zeros(pair_counts.size, dtype=np.int64)
    np.cumsum(pair_counts[:-1], out=pair_starts[1:])
    within = np.arange(total_pairs, dtype=np.int64)
    within -= np.repeat(pair_starts, pair_counts)
    head_rep = np.repeat(head_sizes, pair_counts)
    x = flat[
        np.repeat(offsets[tails], pair_counts) + within // head_rep
    ]
    y = flat[
        np.repeat(offsets[heads], pair_counts) + within % head_rep
    ]
    mass = np.repeat(1.0 / pair_counts, pair_counts)
    # One interleaved scatter-add — (x, y) then (y, x) per pair, the
    # exact accumulation order of the former nested loops, so the
    # counts matrix is bitwise unchanged.
    rows = np.empty(2 * total_pairs, dtype=np.int64)
    cols = np.empty(2 * total_pairs, dtype=np.int64)
    rows[0::2], rows[1::2] = x, y
    cols[0::2], cols[1::2] = y, x
    counts = np.zeros((k, k), dtype=np.float64)
    np.add.at(counts, (rows, cols), np.repeat(mass, 2))
    return JointDistribution(counts)
