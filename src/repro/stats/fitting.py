"""Fitting helpers: estimate distribution parameters from observed data.

Benchmark designers rarely know the analytic form of their data; the
requirements section of the paper assumes users can supply *empirical*
degree distributions and property distributions observed in a real graph.
These helpers extract such empirical inputs and fit the standard
parametric families so the same shape can be regenerated at a different
scale.
"""

from __future__ import annotations

import numpy as np

from .distributions import Empirical, PowerLaw

__all__ = [
    "fit_power_law_exponent",
    "empirical_degree_distribution",
    "rescale_degree_sequence",
]


def fit_power_law_exponent(values, xmin=1):
    """Maximum-likelihood power-law exponent (discrete approximation).

    Uses the Clauset-Shalizi-Newman continuous approximation with the
    standard ``xmin - 1/2`` correction:

        gamma = 1 + n / sum(ln(x_i / (xmin - 1/2)))

    Parameters
    ----------
    values:
        observed positive integers (e.g. node degrees).
    xmin:
        smallest value included in the fit.
    """
    x = np.asarray(values, dtype=np.float64)
    x = x[x >= xmin]
    if x.size == 0:
        raise ValueError(f"no values >= xmin ({xmin})")
    denominator = np.log(x / (xmin - 0.5)).sum()
    if denominator <= 0:
        raise ValueError("degenerate sample: all values equal xmin")
    return 1.0 + x.size / denominator


def empirical_degree_distribution(degrees):
    """Empirical distribution over degree values ``0..max_degree``."""
    d = np.asarray(degrees, dtype=np.int64)
    if d.size == 0:
        raise ValueError("need at least one degree")
    if (d < 0).any():
        raise ValueError("degrees must be nonnegative")
    return Empirical(np.bincount(d))


def rescale_degree_sequence(degrees, new_n, stream):
    """Resample a degree sequence to a different number of nodes.

    Draws ``new_n`` degrees i.i.d. from the empirical distribution of the
    input sequence, then fixes parity (sum of degrees must be even for a
    realisable multigraph) by incrementing one random node.

    Parameters
    ----------
    degrees:
        the observed sequence.
    new_n:
        desired number of nodes.
    stream:
        :class:`~repro.prng.RandomStream` driving the resampling.
    """
    if new_n < 1:
        raise ValueError("new_n must be >= 1")
    dist = empirical_degree_distribution(degrees)
    sample = dist.sample(stream, np.arange(new_n))
    if int(sample.sum()) % 2 == 1:
        bump = int(stream.randint(np.int64(new_n), 0, new_n))
        sample[bump] += 1
    return sample


def fit_power_law(values, xmin=1, xmax=None):
    """Fit a :class:`PowerLaw` distribution object to observed values."""
    x = np.asarray(values, dtype=np.int64)
    if xmax is None:
        xmax = int(x.max())
    gamma = fit_power_law_exponent(x, xmin=xmin)
    return PowerLaw(gamma, xmin, xmax)
