"""Stdlib HTTP front end for the virtual graph.

A thin, dependency-free serving layer: a
:class:`~http.server.ThreadingHTTPServer` whose handler translates
paginated REST-ish queries into :class:`~repro.serve.virtual.
VirtualGraph` calls and renders responses with the *export*
formatters from :mod:`repro.io.chunks` — a CSV page served over HTTP
is byte-identical to the corresponding line range of a ``repro
generate`` export, which is what the serve-vs-generate equivalence
tests and the CI smoke job diff against.

Routes (all ``GET``)::

    /                                    meta + access classification
    /healthz                             liveness (always 200 once bound)
    /readyz                              readiness (503 while warming)
    /nodes/<Type>?offset&limit           JSON-lines node records
    /nodes/<Type>/<id>                   one node record (JSON)
    /properties/<Type>/<prop>?offset&limit&format=csv|jsonl
                                         one property column page
    /edges/<name>?offset&limit&format=csv|jsonl
                                         edge page (id, tail, head [+ props])
    /edges/<name>/exists?src&dst         edge-existence probe
    /neighbors/<name>/<id>?direction&offset&limit
                                         neighbourhood of one node

Pagination contract (see docs/serving.md): ``offset >= 0``, ``1 <=
limit <= max_limit`` (default page ``DEFAULT_LIMIT``); an offset at or
past the end returns an **empty 200 page**, never an error; malformed
parameters are 400 and unknown names/ids are 404, both with JSON
error bodies ``{"error": ..., "status": ...}``.

Robustness contract (see docs/robustness.md): every connection gets a
per-request socket timeout so a stalled client cannot pin a handler
thread; while the virtual graph warms, data routes answer **503 with
``Retry-After``** (``/healthz`` stays 200 — the process is alive, not
ready); and :func:`install_signal_handlers` arranges a graceful
SIGTERM/SIGINT drain — stop accepting, finish in-flight requests,
then run the cleanup callback (closing the graph unlinks its spool).
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

import numpy as np

from ..io.chunks import (
    format_edge_csv_chunk,
    format_json_records_chunk,
    format_property_csv_chunk,
    id_strings,
    json_encode_column,
)

__all__ = ["DEFAULT_LIMIT", "DEFAULT_REQUEST_TIMEOUT", "MAX_LIMIT",
           "GraphHTTPServer", "GraphRequestHandler", "create_server",
           "install_signal_handlers", "serve"]

#: rows per page when the client does not say.
DEFAULT_LIMIT = 1_000
#: hard per-request row ceiling — keeps any one response O(page).
MAX_LIMIT = 65_536
#: per-connection socket timeout (seconds) — a stalled client times
#: out instead of pinning a handler thread forever.
DEFAULT_REQUEST_TIMEOUT = 30.0


class _HTTPError(Exception):
    """Internal: carries a status + message to the JSON error body."""

    def __init__(self, status, message):
        super().__init__(message)
        self.status = int(status)
        self.message = str(message)


def _int_param(params, key, default, minimum=0, maximum=None):
    raw = params.get(key, [None])[-1]
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise _HTTPError(400, f"{key!r} must be an integer, got {raw!r}")
    if value < minimum or (maximum is not None and value > maximum):
        hi = maximum if maximum is not None else "inf"
        raise _HTTPError(
            400, f"{key!r} must be in [{minimum}, {hi}], got {value}"
        )
    return value


def _str_param(params, key, default, choices):
    raw = params.get(key, [default])[-1]
    if raw not in choices:
        raise _HTTPError(
            400,
            f"{key!r} must be one of {sorted(choices)}, got {raw!r}",
        )
    return raw


class GraphRequestHandler(BaseHTTPRequestHandler):
    """Route table over one shared :class:`VirtualGraph`.

    The handler is stateless; the graph hangs off the server object
    (``server.graph``), so the threading server can answer concurrent
    requests — every query path is either pure recomputation or a
    read of a memory-mapped spool file.
    """

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def setup(self):
        # BaseHTTPRequestHandler honours a class/instance ``timeout``
        # by calling settimeout on the connection during setup; a
        # read that stalls past it closes the connection instead of
        # pinning the handler thread.
        self.timeout = getattr(
            self.server, "request_timeout", DEFAULT_REQUEST_TIMEOUT
        )
        super().setup()

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send(self, status, body, content_type, headers=()):
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for key, value in headers:
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, obj, status=200, headers=()):
        self._send(
            status, json.dumps(obj) + "\n", "application/json",
            headers=headers,
        )

    def _send_error_json(self, status, message):
        self._send_json({"error": message, "status": status}, status)

    # -- request entry -----------------------------------------------------

    def do_GET(self):  # noqa: N802 - stdlib casing
        split = urlsplit(self.path)
        parts = [p for p in split.path.split("/") if p]
        params = parse_qs(split.query)
        try:
            self._route(parts, params)
        except _HTTPError as exc:
            self._send_error_json(exc.status, exc.message)
        except (KeyError, LookupError) as exc:
            message = exc.args[0] if exc.args else str(exc)
            self._send_error_json(404, str(message))
        except IndexError as exc:
            self._send_error_json(404, str(exc))
        except TypeError as exc:
            # A sequential-only generator behind a random-access route.
            self._send_error_json(501, str(exc))
        except ValueError as exc:
            self._send_error_json(400, str(exc))

    def _route(self, parts, params):
        graph = self.server.graph
        ready = self.server.ready.is_set()
        if parts == ["healthz"]:
            # Liveness: answers 200 the moment the socket is bound —
            # orchestrators must not kill a pod for still warming up.
            return self._send_json(
                {"status": "ok", "ready": ready}
            )
        if parts == ["readyz"]:
            if ready:
                return self._send_json({"status": "ready"})
            return self._send_json(
                {"status": "warming"}, status=503,
                headers=(("Retry-After", "1"),),
            )
        if not ready:
            # Degraded mode: data routes refuse politely while edge
            # states warm, instead of racing half-built state.
            return self._send_json(
                {"error": "virtual graph is warming up", "status": 503},
                status=503, headers=(("Retry-After", "1"),),
            )
        if not parts:
            return self._send_json({
                "service": "repro-serve",
                "seed": graph.seed,
                "chunk_rows": graph.chunk_rows,
                "default_limit": self.server.default_limit,
                "max_limit": self.server.max_limit,
                "classification": graph.classification(),
            })
        head, rest = parts[0], parts[1:]
        if head == "nodes" and len(rest) == 1:
            return self._nodes_page(rest[0], params)
        if head == "nodes" and len(rest) == 2:
            return self._node_record(rest[0], rest[1])
        if head == "properties" and len(rest) == 2:
            return self._property_page(rest[0], rest[1], params)
        if head == "edges" and len(rest) == 1:
            return self._edges_page(rest[0], params)
        if head == "edges" and len(rest) == 2 and rest[1] == "exists":
            return self._edge_exists(rest[0], params)
        if head == "neighbors" and len(rest) == 2:
            return self._neighbors(rest[0], rest[1], params)
        raise _HTTPError(404, f"no route for {self.path!r}")

    # -- pagination --------------------------------------------------------

    def _page(self, params, total):
        """-> ``(lo, hi)`` clamped to ``[0, total)``.

        Past-the-end offsets yield an empty page (``lo == hi``) — a
        200, so clients can walk ``offset += limit`` until a short
        page without special-casing the boundary.
        """
        offset = _int_param(params, "offset", 0)
        limit = _int_param(
            params, "limit", self.server.default_limit,
            minimum=1, maximum=self.server.max_limit,
        )
        lo = min(offset, total)
        return lo, min(lo + limit, total)

    # -- node routes -------------------------------------------------------

    def _node_columns(self, graph, type_name, ids):
        columns = graph.node_records(type_name, ids)
        keys = ["id"] + list(columns)
        encoded = [list(map(str, ids.tolist()))]
        encoded += [
            json_encode_column(values) for values in columns.values()
        ]
        return keys, encoded

    def _nodes_page(self, type_name, params):
        graph = self.server.graph
        lo, hi = self._page(params, graph.node_count(type_name))
        ids = np.arange(lo, hi, dtype=np.int64)
        keys, encoded = self._node_columns(graph, type_name, ids)
        body = format_json_records_chunk(keys, encoded)
        self._send(200, body, "application/x-ndjson")

    def _node_record(self, type_name, raw_id):
        graph = self.server.graph
        count = graph.node_count(type_name)
        try:
            node_id = int(raw_id)
        except ValueError:
            raise _HTTPError(400, f"node id must be an integer, got {raw_id!r}")
        if not 0 <= node_id < count:
            raise _HTTPError(
                404,
                f"node id {node_id} out of range [0, {count}) for "
                f"{type_name!r}",
            )
        ids = np.array([node_id], dtype=np.int64)
        keys, encoded = self._node_columns(graph, type_name, ids)
        body = format_json_records_chunk(keys, encoded)
        self._send(200, body.rstrip("\n") + "\n", "application/json")

    def _property_page(self, type_name, prop_name, params):
        graph = self.server.graph
        lo, hi = self._page(params, graph.node_count(type_name))
        if prop_name not in graph.node_property_names(type_name):
            raise _HTTPError(
                404,
                f"node type {type_name!r} has no property "
                f"{prop_name!r}",
            )
        fmt = _str_param(params, "format", "csv", {"csv", "jsonl"})
        values = graph.node_properties_of(
            type_name, prop_name, np.arange(lo, hi, dtype=np.int64)
        )
        if fmt == "csv":
            # Byte-identical to lines [lo, hi) of the generate-export
            # CSV body for this property (header excluded).
            body = format_property_csv_chunk(lo, values)
            self._send(200, body, "text/csv")
        else:
            body = format_json_records_chunk(
                ["id", "value"],
                [id_strings(lo, hi), json_encode_column(values)],
            )
            self._send(200, body, "application/x-ndjson")

    # -- edge routes -------------------------------------------------------

    def _edges_page(self, name, params):
        graph = self.server.graph
        lo, hi = self._page(params, graph.edge_count(name))
        fmt = _str_param(params, "format", "csv", {"csv", "jsonl"})
        if fmt == "csv":
            tails, heads = graph.edges_range(name, lo, hi)
            body = format_edge_csv_chunk(lo, tails, heads)
            self._send(200, body, "text/csv")
            return
        columns = graph.edge_records(name, lo, hi)
        keys = ["id"] + list(columns)
        encoded = [id_strings(lo, hi)] + [
            json_encode_column(values) for values in columns.values()
        ]
        body = format_json_records_chunk(keys, encoded)
        self._send(200, body, "application/x-ndjson")

    def _edge_exists(self, name, params):
        graph = self.server.graph
        src = _int_param(params, "src", None)
        dst = _int_param(params, "dst", None)
        if src is None or dst is None:
            raise _HTTPError(400, "'src' and 'dst' are required")
        graph.edge_count(name)  # 404 on unknown edge types
        self._send_json({
            "edge_type": name,
            "src": src,
            "dst": dst,
            "exists": graph.edge_exists(name, src, dst),
        })

    def _neighbors(self, name, raw_id, params):
        graph = self.server.graph
        try:
            node_id = int(raw_id)
        except ValueError:
            raise _HTTPError(400, f"node id must be an integer, got {raw_id!r}")
        direction = _str_param(
            params, "direction", "both", {"out", "in", "both"}
        )
        graph.edge_count(name)  # 404 on unknown edge types
        neighbors = graph.neighbors_of(name, node_id, direction)
        lo, hi = self._page(params, neighbors.size)
        self._send_json({
            "edge_type": name,
            "node": node_id,
            "direction": direction,
            "count": int(neighbors.size),
            "offset": lo,
            "neighbors": [int(v) for v in neighbors[lo:hi]],
        })


class GraphHTTPServer(ThreadingHTTPServer):
    """Threading server with a readiness gate and a draining close.

    ``block_on_close``/non-daemon handler threads mean
    ``server_close()`` *waits* for in-flight requests — the graceful
    half of the drain contract; ``shutdown()`` (from a signal handler
    thread) stops the accept loop, the other half.
    """

    daemon_threads = False
    block_on_close = True


def create_server(graph, host="127.0.0.1", port=0, *,
                  default_limit=DEFAULT_LIMIT, max_limit=MAX_LIMIT,
                  verbose=False, ready=True,
                  request_timeout=DEFAULT_REQUEST_TIMEOUT):
    """Bind a :class:`GraphHTTPServer` over ``graph``.

    ``port=0`` binds an ephemeral port (tests, smoke jobs) — read it
    back from ``server.server_address``.  The caller owns both the
    server (``server_close``) and the graph (``graph.close``).

    ``ready=False`` starts in degraded mode: data routes answer 503
    (``Retry-After``) until ``server.ready.set()`` — the CLI warms the
    graph in the background and flips the gate when edge states are
    built, so ``/healthz`` responds from the first instant.
    """
    server = GraphHTTPServer((host, port), GraphRequestHandler)
    server.graph = graph
    server.default_limit = int(default_limit)
    server.max_limit = int(max_limit)
    server.verbose = bool(verbose)
    server.request_timeout = (
        None if request_timeout is None else float(request_timeout)
    )
    server.ready = threading.Event()
    if ready:
        server.ready.set()
    return server


def install_signal_handlers(server, signals=(signal.SIGTERM, signal.SIGINT)):
    """Translate SIGTERM/SIGINT into a graceful drain.

    ``shutdown()`` must not be called from the ``serve_forever``
    thread (it deadlocks), and a signal handler runs exactly there —
    so the handler hands it to a short-lived thread.  After
    ``serve_forever`` returns, the caller's ``finally`` block runs
    ``server_close()`` (waits for in-flight requests) and closes the
    graph, which unlinks any owned spool.
    """
    def _drain(signum, frame):
        threading.Thread(
            target=server.shutdown, name="repro-serve-drain", daemon=True
        ).start()

    for signum in signals:
        signal.signal(signum, _drain)


def serve(graph, host="127.0.0.1", port=8080, *, install_signals=False,
          **kwargs):
    """Warm the graph's edge states and serve until drained.

    ``install_signals=True`` adds the SIGTERM/SIGINT drain and closes
    the graph (unlinking its spool) on the way out — the behaviour
    ``repro serve`` ships; library callers keep graph ownership by
    default.
    """
    graph.warm()
    server = create_server(graph, host, port, **kwargs)
    if install_signals:
        install_signal_handlers(server)
    try:
        server.serve_forever()
    finally:
        server.server_close()
        if install_signals:
            graph.close()
    return server
