"""Random-access serving of virtual graphs (see docs/serving.md).

``repro serve <recipe>`` answers node, property, edge, neighbourhood
and existence queries straight from a recipe — no materialised graph —
by exploiting the PG/SG random-access protocol
(:attr:`~repro.properties.base.PropertyGenerator.access` /
:attr:`~repro.structure.base.StructureGenerator.access`).
"""

from .http import create_server, install_signal_handlers, serve
from .virtual import VirtualGraph

__all__ = ["VirtualGraph", "create_server", "install_signal_handlers",
           "serve"]
