"""The virtual graph: random-access queries straight from a recipe.

A :class:`VirtualGraph` holds *no* node or edge tables.  It resolves a
schema + scale + seed into metadata (counts, matching maps, structure
chunk streams) and answers point and page queries by recomputing
exactly the rows a full :meth:`~repro.core.engine.GraphGenerator.
generate` run would have produced — byte-identical, because every
stage it touches is a pure function of ``(seed, indices)``:

* **node properties** — the PG protocol's ``properties_of`` via
  :func:`~repro.core.tasks.property_values_at`, with intra-type
  dependencies resolved recursively on the queried ids only;
* **edges** — random-access structure generators re-emit any edge page
  through :meth:`~repro.structure.base.EdgeChunkStream.emit`, then the
  exact permutation maps the serial ``match_edge`` derives relabel the
  page.  The maps are the documented O(nodes) term; they are spilled
  to a disk spool and memory-mapped, so query-time allocation stays
  O(page + chunk);
* **edge properties** — the same PG kernel, with ``tail.x``/``head.x``
  dependencies gathered by *recomputing* the endpoint properties at
  the page's endpoint ids (random access again, no node table);
* **neighbourhoods / edge-existence** — a bounded scan over the edge
  pages (O(m) compute, O(chunk) memory).

Two configurations fall back to a documented **spooled** mode, exactly
mirroring the sharded executor's concessions: sequential structure
generators (the table is materialised once, spilled, and paged from
disk) and correlated (SBM-Part) matching (the final table is computed
once at first touch, spilled, and paged from disk).  The
:meth:`VirtualGraph.classification` report says which mode each edge
type is in and why — that is the protocol flag surfaced to clients.

Planted scenarios (a ``plants:`` block in the recipe) are served as a
bounded overlay: the :func:`~repro.planting.plant.plan_plants` plan is
a pure function of ``(plants, node counts, base edge counts, seed)``,
so the serving layer computes the *same* plan the exporters do.
Appended plant edges occupy the contiguous id range ``[m, m+e)`` after
the generated block, forced node attributes patch the public
node-property queries, and dependent edge properties over the
appended ids are recomputed through the same random-access kernel —
so ``neighbors_of`` / ``edge_exists`` see the injected patterns and
every page matches the exported planted world byte for byte.
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path

import numpy as np

from ..core.dependency import build_task_graph
from ..core.schema import Cardinality, SchemaError
from ..core.tasks import (
    match_edge,
    property_values_at,
    resolve_count,
    structure_inputs,
)
from ..io.spool import TableSpool
from ..prng import RandomStream, derive_seed
from ..structure.registry import create_generator
from ..tables import PropertyTable

__all__ = ["VirtualGraph"]


class _StructureSource:
    """Pre-matching edges, pageable via ``emit(lo, hi)``.

    Carries the same metadata surface as an
    :class:`~repro.tables.EdgeTable` so :func:`resolve_count` and the
    matching-map derivation can consume it directly.
    """

    def __init__(self, name, num_edges, num_tail_nodes, num_head_nodes,
                 directed, random_access):
        self.name = name
        self.num_edges = int(num_edges)
        self.num_tail_nodes = int(num_tail_nodes)
        self.num_head_nodes = int(num_head_nodes)
        self.directed = bool(directed)
        self.random_access = bool(random_access)

    def __len__(self):
        return self.num_edges

    @property
    def is_bipartite(self):
        return self.num_tail_nodes != self.num_head_nodes

    @property
    def num_nodes(self):
        if self.is_bipartite:
            raise ValueError(
                f"structure {self.name!r} is bipartite; use "
                "num_tail_nodes / num_head_nodes"
            )
        return self.num_tail_nodes

    def emit(self, lo, hi):
        raise NotImplementedError


class _StreamSource(_StructureSource):
    """Chunkable generator: pages re-derived from the seed on demand."""

    def __init__(self, stream, random_access):
        super().__init__(
            stream.name, stream.num_edges, stream.num_tail_nodes,
            stream.num_head_nodes, stream.directed, random_access,
        )
        self._stream = stream

    def emit(self, lo, hi):
        return self._stream.emit(lo, hi)

    def to_edge_table(self):
        return self._stream.to_edge_table()


class _SpilledSource(_StructureSource):
    """Materialised-once edges, spilled to the spool and memory-mapped."""

    def __init__(self, spool, prefix, table):
        super().__init__(
            table.name, len(table), table.num_tail_nodes,
            table.num_head_nodes, table.directed, random_access=False,
        )
        spill = spool.spiller(prefix)
        self._tails = spill("tails", table.tails)
        self._heads = spill("heads", table.heads)

    def emit(self, lo, hi):
        return (
            np.asarray(self._tails[lo:hi]),
            np.asarray(self._heads[lo:hi]),
        )

    def to_edge_table(self):
        from ..tables import EdgeTable

        return EdgeTable(
            self.name,
            np.asarray(self._tails),
            np.asarray(self._heads),
            num_tail_nodes=self.num_tail_nodes,
            num_head_nodes=self.num_head_nodes,
            directed=self.directed,
        )


class _EdgeState:
    """Final (post-matching) edge pages for one edge type."""

    def __init__(self, source, tail_map, head_map, mode, reason,
                 directed):
        self._source = source
        self._tail_map = tail_map
        self._head_map = head_map
        self.mode = mode
        self.reason = reason
        self.directed = bool(directed)
        self.num_edges = source.num_edges

    def emit(self, lo, hi):
        """Final ``(tails, heads)`` of edge ids ``[lo, hi)``."""
        tails, heads = self._source.emit(lo, hi)
        if self._tail_map is not None:
            tails = np.asarray(self._tail_map[tails])
        if self._head_map is not None:
            heads = np.asarray(self._head_map[heads])
        return tails, heads


class VirtualGraph:
    """Random-access façade over a compiled scenario (or raw schema).

    Parameters
    ----------
    schema, scale, seed:
        as for the engines.
    spool_dir:
        where matching maps and spooled fallbacks land (a temporary
        directory by default; :meth:`close` removes it when owned).
    chunk_rows:
        page/scan granularity — the memory unit of every query.
    """

    def __init__(self, schema, scale, seed=0, spool_dir=None,
                 chunk_rows=65_536, plants=None):
        self.schema = schema.validate()
        self.scale = dict(scale)
        self.seed = int(seed)
        self.chunk_rows = int(chunk_rows)
        if self.chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        self._owns_spool = spool_dir is None
        if spool_dir is None:
            spool_dir = tempfile.mkdtemp(prefix="repro-serve-")
        self._spool = TableSpool(Path(spool_dir), self.chunk_rows)
        self._lock = threading.RLock()
        self.node_counts = {}
        self._sources = {}
        self._states = {}
        self._correlated = {}
        self.plan = None
        try:
            self._resolve_topology()
            if plants:
                self._resolve_plants(plants)
        except BaseException:
            self.close()
            raise

    @classmethod
    def from_scenario(cls, compiled, spool_dir=None, chunk_rows=65_536):
        """Build from a :class:`~repro.scenarios.compile.
        CompiledScenario` (what ``repro serve <recipe>`` does)."""
        return cls(
            compiled.schema, compiled.scale, seed=compiled.seed,
            spool_dir=spool_dir, chunk_rows=chunk_rows,
            plants=getattr(compiled, "plants", None),
        )

    def close(self):
        """Release mmap'd views; remove the spool when owned.

        Always drops the memory-mapped match maps (a borrowed spool
        keeps its files, but this graph's handles are closed), then
        unlinks owned directories — the signal-drain path relies on
        this to leave no ``repro-serve-*`` tempdir behind.
        """
        self._spool.close_views()
        if self._owns_spool:
            self._spool.cleanup()

    # -- topology (counts + structure metadata, no matching yet) ----------

    def _resolve_topology(self):
        order = build_task_graph(
            self.schema, self.scale
        ).topological_order()
        for task in order:
            if task.kind == "count":
                self.node_counts[task.subject] = resolve_count(
                    self.schema, self.scale, task, self._sources
                )
            elif task.kind == "structure":
                self._sources[task.subject] = self._build_source(task)

    def _build_source(self, task):
        spec, sg_seed, n = structure_inputs(
            self.schema, self.scale, self.seed, task, self.node_counts
        )
        generator = create_generator(
            spec.name, seed=sg_seed, **spec.params
        )
        prefix = f"structure.{task.subject}"
        edge = self.schema.edge_type(task.subject)
        corr = edge.correlation
        strict = edge.cardinality in (
            Cardinality.ONE_TO_MANY, Cardinality.ONE_TO_ONE
        )
        self._correlated[task.subject] = (
            corr is not None
            and not strict
            and (edge.is_monopartite or corr.head_property is not None)
        )
        if generator.chunkable(n):
            stream = generator.run_chunked(
                n, self.chunk_rows, spill=self._spool.spiller(prefix)
            )
            return _StreamSource(stream, generator.random_access(n))
        # Sequential structure: the documented spooled concession —
        # materialise once, park on disk, page from the mapping.
        table = generator.run(n)
        source = _SpilledSource(self._spool, prefix, table)
        del table
        return source

    # -- planting overlay --------------------------------------------------

    def _resolve_plants(self, plants):
        """Compute the plant plan against the resolved topology.

        Feeds :func:`~repro.planting.plant.plan_plants` exactly what
        :func:`~repro.scenarios.compile.run_scenario` feeds it after
        generation — node counts and *base* edge counts — so the plan
        (node maps, appended edge block, forced attributes) is
        identical to the exported one.
        """
        from ..planting import plan_plants

        base_counts = {
            name: source.num_edges
            for name, source in self._sources.items()
        }
        self.plan = plan_plants(
            list(plants), self.node_counts, base_counts, self.seed
        )

    def _appended_edges(self, name):
        """``(tails, heads)`` of the appended plant block (maybe empty)."""
        if self.plan is None:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        extra = self.plan.appended.get(name)
        if extra is None:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return extra

    def _apply_node_overrides(self, type_name, prop_name, ids, values):
        """Patch forced plant attributes into a node-property page."""
        if self.plan is None:
            return values
        override = self.plan.overrides.get(f"{type_name}.{prop_name}")
        if override is None:
            return values
        ov_ids, ov_values = override
        pos = np.searchsorted(ov_ids, ids)
        pos = np.minimum(pos, ov_ids.size - 1)
        hit = ov_ids[pos] == ids
        if not hit.any():
            return values
        patched = values.astype(
            np.promote_types(values.dtype, ov_values.dtype), copy=True
        )
        patched[hit] = ov_values[pos[hit]]
        return patched

    # -- matching state (lazy, thread-safe) --------------------------------

    def _edge_state(self, name):
        state = self._states.get(name)
        if state is not None:
            return state
        with self._lock:
            state = self._states.get(name)
            if state is None:
                state = self._build_edge_state(name)
                self._states[name] = state
            return state

    def _build_edge_state(self, name):
        edge = self.schema.edge_type(name)
        source = self._sources[name]
        tail_count = self.node_counts[edge.tail_type]
        head_count = self.node_counts[edge.head_type]
        if self._correlated[name]:
            return self._build_correlated_state(
                edge, source, tail_count, head_count
            )
        stream = RandomStream(derive_seed(self.seed, f"match:{name}"))
        spill = self._spool.spiller(f"match.{name}")
        strict = edge.cardinality in (
            Cardinality.ONE_TO_MANY, Cardinality.ONE_TO_ONE
        )
        if strict:
            if source.num_tail_nodes > tail_count:
                raise SchemaError(
                    f"edge {name!r}: structure has more tails than "
                    f"{edge.tail_type!r} instances"
                )
            tail_map = stream.substream("tails").permutation(
                tail_count
            )[:source.num_tail_nodes]
            tail_map, head_map = spill("tail_map", tail_map), None
        elif not edge.is_monopartite:
            tail_map = spill("tail_map", stream.substream(
                "tails"
            ).permutation(tail_count)[:source.num_tail_nodes])
            head_map = spill("head_map", stream.substream(
                "heads"
            ).permutation(head_count)[:source.num_head_nodes])
        else:
            if source.num_nodes > tail_count:
                raise SchemaError(
                    f"edge {name!r}: structure has {source.num_nodes} "
                    f"nodes but {edge.tail_type!r} has {tail_count} "
                    "instances"
                )
            from ..core.matching import random_match

            pt_ids = PropertyTable(
                name, np.arange(tail_count, dtype=np.int64)
            )
            mapping = spill("node_map", random_match(
                pt_ids, source, seed=derive_seed(self.seed, f"match:{name}")
            ))
            tail_map = head_map = mapping
        if source.random_access:
            mode, reason = "virtual", (
                "seed-derived chunked emission relabeled through "
                "spilled permutation maps"
            )
        else:
            mode, reason = "spooled", (
                "sequential structure generator; edges materialised "
                "once and paged from the disk spool"
            )
        return _EdgeState(
            source, tail_map, head_map, mode, reason, source.directed
        )

    def _build_correlated_state(self, edge, source, tail_count,
                                head_count):
        """Correlated (SBM-Part) matching — the other global stage.

        Runs the exact serial matching kernel once, spills the final
        table, and pages it from disk; byte-identical to ``generate``
        because it *is* the serial kernel.
        """
        corr = edge.correlation
        structure = source.to_edge_table()
        tail_pt = PropertyTable(
            f"{edge.tail_type}.{corr.tail_property}",
            self._node_column(edge.tail_type, corr.tail_property),
        )
        head_pt = None
        if corr.head_property is not None:
            head_pt = PropertyTable(
                f"{edge.head_type}.{corr.head_property}",
                self._node_column(edge.head_type, corr.head_property),
            )
        table, _ = match_edge(
            edge, self.seed, f"match:{edge.name}", structure,
            tail_count, head_count, tail_pt, head_pt, prep=None,
        )
        del structure, tail_pt, head_pt
        final = _SpilledSource(
            self._spool, f"final.{edge.name}", table
        )
        del table
        return _EdgeState(
            final, None, None, "spooled",
            "correlated matching is a global stage; the matched table "
            "is computed once and paged from the disk spool",
            final.directed,
        )

    def _node_column(self, type_name, prop_name):
        """One whole node-property column (global stages only).

        Raw (pre-override) values: correlated matching ran against the
        generated properties, before any plant forced its attributes.
        """
        ids = np.arange(self.node_counts[type_name], dtype=np.int64)
        return self._raw_node_properties_of(type_name, prop_name, ids)

    # -- node queries ------------------------------------------------------

    def node_count(self, type_name):
        if type_name not in self.node_counts:
            raise KeyError(f"unknown node type {type_name!r}")
        return self.node_counts[type_name]

    def node_property_names(self, type_name):
        return [
            prop.name
            for prop in self.schema.node_type(type_name).properties
        ]

    def _check_node_ids(self, type_name, ids):
        count = self.node_count(type_name)
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= count):
            raise IndexError(
                f"node ids out of range [0, {count}) for "
                f"{type_name!r}"
            )
        return ids

    def _node_values(self, type_name, prop, ids, cache):
        if prop.name in cache:
            return cache[prop.name]
        if prop.generator is None:
            raise SchemaError(
                f"{type_name}.{prop.name}: no property generator "
                "declared"
            )
        node_type = self.schema.node_type(type_name)
        deps = [
            self._node_values(
                type_name, node_type.property_named(dep), ids, cache
            )
            for dep in prop.depends_on
        ]
        values = property_values_at(
            prop.generator, f"property:{type_name}.{prop.name}",
            self.seed, ids, deps,
        )
        cache[prop.name] = values
        return values

    def _raw_node_properties_of(self, type_name, prop_name, ids):
        """One property column as *generated* (no plant overrides)."""
        node_type = self.schema.node_type(type_name)
        prop = node_type.property_named(prop_name)
        ids = self._check_node_ids(type_name, ids)
        return self._node_values(type_name, prop, ids, {})

    def node_properties_of(self, type_name, prop_name, ids):
        """One property column at arbitrary node ids (O(page)).

        Plant-forced attributes are patched in, matching the exported
        overlay columns.
        """
        ids = self._check_node_ids(type_name, ids)
        values = self._raw_node_properties_of(type_name, prop_name, ids)
        return self._apply_node_overrides(
            type_name, prop_name, ids, values
        )

    def node_records(self, type_name, ids):
        """All property columns at the given ids, in schema order."""
        node_type = self.schema.node_type(type_name)
        ids = self._check_node_ids(type_name, ids)
        cache = {}
        return {
            prop.name: self._apply_node_overrides(
                type_name, prop.name, ids,
                self._node_values(type_name, prop, ids, cache),
            )
            for prop in node_type.properties
        }

    # -- edge queries ------------------------------------------------------

    def edge_count(self, name):
        """Total edges, including the appended plant block (if any)."""
        return self.base_edge_count(name) + self._appended_edges(
            name
        )[0].size

    def base_edge_count(self, name):
        """Generated (pre-injection) edges only."""
        if name not in self._sources:
            raise KeyError(f"unknown edge type {name!r}")
        return self._sources[name].num_edges

    def edge_property_names(self, name):
        return [
            prop.name
            for prop in self.schema.edge_type(name).properties
        ]

    def _check_edge_range(self, name, lo, hi):
        count = self.edge_count(name)
        lo, hi = int(lo), int(hi)
        if not 0 <= lo <= hi <= count:
            raise IndexError(
                f"edge range [{lo}, {hi}) out of bounds "
                f"[0, {count}) for {name!r}"
            )
        return lo, hi

    def edges_range(self, name, lo, hi):
        """Final ``(tails, heads)`` of edge ids ``[lo, hi)``.

        Ids past the generated block page into the appended plant
        edges, exactly like the exported overlay table.
        """
        lo, hi = self._check_edge_range(name, lo, hi)
        m = self.base_edge_count(name)
        parts_t, parts_h = [], []
        if lo < m:
            tails, heads = self._edge_state(name).emit(lo, min(hi, m))
            parts_t.append(np.asarray(tails, dtype=np.int64))
            parts_h.append(np.asarray(heads, dtype=np.int64))
        if hi > m:
            extra_tails, extra_heads = self._appended_edges(name)
            parts_t.append(extra_tails[max(lo, m) - m: hi - m])
            parts_h.append(extra_heads[max(lo, m) - m: hi - m])
        if not parts_t:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        if len(parts_t) == 1:
            return parts_t[0], parts_h[0]
        return np.concatenate(parts_t), np.concatenate(parts_h)

    def _edge_values(self, edge, prop, ids, tails, heads, cache,
                     node_get=None):
        if prop.name in cache:
            return cache[prop.name]
        if prop.generator is None:
            raise SchemaError(
                f"{edge.name}.{prop.name}: no property generator "
                "declared"
            )
        if node_get is None:
            node_get = self._raw_node_properties_of
        deps = []
        for dep in prop.depends_on:
            if dep.startswith("tail."):
                deps.append(node_get(
                    edge.tail_type, dep[len("tail."):], tails
                ))
            elif dep.startswith("head."):
                deps.append(node_get(
                    edge.head_type, dep[len("head."):], heads
                ))
            else:
                deps.append(self._edge_values(
                    edge, edge.property_named(dep), ids, tails, heads,
                    cache, node_get,
                ))
        values = property_values_at(
            prop.generator, f"property:{edge.name}.{prop.name}",
            self.seed, ids, deps,
        )
        cache[prop.name] = values
        return values

    def _edge_property_page(self, edge, props, lo, hi):
        """Property columns (dict) for edge ids ``[lo, hi)``.

        The generated segment recomputes endpoint dependencies from the
        *raw* node columns (that is what base generation saw); the
        appended segment gathers them through the overridden columns,
        so forced plant attributes feed dependent edge properties —
        mirroring the exported overlay tables in both halves.
        """
        m = self.base_edge_count(edge.name)
        pages = []
        if lo < m:
            b_hi = min(hi, m)
            tails, heads = self._edge_state(edge.name).emit(lo, b_hi)
            ids = np.arange(lo, b_hi, dtype=np.int64)
            cache = {}
            pages.append((tails, heads, {
                prop.name: self._edge_values(
                    edge, prop, ids, tails, heads, cache
                )
                for prop in props
            }))
        if hi > m:
            extra_tails, extra_heads = self._appended_edges(edge.name)
            a_lo, a_hi = max(lo, m) - m, hi - m
            tails = extra_tails[a_lo:a_hi]
            heads = extra_heads[a_lo:a_hi]
            ids = np.arange(m + a_lo, m + a_hi, dtype=np.int64)
            cache = {}
            pages.append((tails, heads, {
                prop.name: self._edge_values(
                    edge, prop, ids, tails, heads, cache,
                    node_get=self.node_properties_of,
                )
                for prop in props
            }))
        if len(pages) == 1:
            tails, heads, columns = pages[0]
            return {"tail": tails, "head": heads, **columns}
        if not pages:
            empty = np.empty(0, dtype=np.int64)
            out = {"tail": empty, "head": empty.copy()}
            for prop in props:
                out[prop.name] = np.empty(0)
            return out
        out = {
            "tail": np.concatenate([p[0] for p in pages]),
            "head": np.concatenate([p[1] for p in pages]),
        }
        for prop in props:
            out[prop.name] = np.concatenate(
                [p[2][prop.name] for p in pages]
            )
        return out

    def edge_properties_range(self, name, prop_name, lo, hi):
        """One edge-property column over edge ids ``[lo, hi)``.

        Endpoint dependencies (``tail.x`` / ``head.x``) are recomputed
        at the page's endpoint ids — random access end to end.
        """
        edge = self.schema.edge_type(name)
        prop = edge.property_named(prop_name)
        lo, hi = self._check_edge_range(name, lo, hi)
        return self._edge_property_page(edge, [prop], lo, hi)[
            prop.name
        ]

    def edge_records(self, name, lo, hi):
        """Endpoints plus every property column for a page of edges."""
        edge = self.schema.edge_type(name)
        lo, hi = self._check_edge_range(name, lo, hi)
        return self._edge_property_page(edge, edge.properties, lo, hi)

    def neighbors_of(self, name, node_id, direction="both"):
        """Neighbours of one (final) node id over edge type ``name``.

        A bounded scan of the final edge pages in edge-id order —
        O(m) compute, O(chunk) memory — with the same endpoint
        convention as :meth:`repro.structure.base.StructureGenerator.
        neighbors_of`.
        """
        if direction not in ("out", "in", "both"):
            raise ValueError(
                f"direction must be out/in/both, got {direction!r}"
            )
        node_id = int(node_id)
        found = []
        total = self.edge_count(name)
        for lo in range(0, total, self.chunk_rows):
            hi = min(lo + self.chunk_rows, total)
            tails, heads = self.edges_range(name, lo, hi)
            if direction in ("out", "both"):
                found.append(heads[tails == node_id])
            if direction in ("in", "both"):
                mask = heads == node_id
                if direction == "both":
                    mask &= tails != heads
                found.append(tails[mask])
        if not found:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(found)

    def edge_exists(self, name, src, dst):
        """Does the final edge ``src -> dst`` exist (either orientation
        for undirected edge types)?  Bounded scan with early exit.

        Scans the appended plant block too, so injected template edges
        are visible."""
        src, dst = int(src), int(dst)
        state = self._edge_state(name)
        total = self.edge_count(name)
        for lo in range(0, total, self.chunk_rows):
            hi = min(lo + self.chunk_rows, total)
            tails, heads = self.edges_range(name, lo, hi)
            hit = (tails == src) & (heads == dst)
            if not state.directed:
                hit |= (tails == dst) & (heads == src)
            if hit.any():
                return True
        return False

    # -- metadata ----------------------------------------------------------

    def warm(self):
        """Build every edge state up front (server start-up)."""
        for name in self.schema.edge_types:
            self._edge_state(name)
        return self

    def classification(self):
        """Access-mode report: which tables are virtual and why."""
        edges = {}
        for name, edge in self.schema.edge_types.items():
            source = self._sources[name]
            if self._correlated[name]:
                mode = "spooled"
                reason = (
                    "correlated matching is a global stage; the "
                    "matched table is computed once and paged from "
                    "the disk spool"
                )
            elif source.random_access:
                mode = "virtual"
                reason = (
                    "seed-derived chunked emission relabeled through "
                    "spilled permutation maps"
                )
            else:
                mode = "spooled"
                reason = (
                    "sequential structure generator; edges "
                    "materialised once and paged from the disk spool"
                )
            entry = {
                "count": self.edge_count(name),
                "tail": edge.tail_type,
                "head": edge.head_type,
                "directed": source.directed,
                "mode": mode,
                "random_access": source.random_access
                and not self._correlated[name],
                "reason": reason,
                "properties": self.edge_property_names(name),
            }
            appended = self._appended_edges(name)[0].size
            if appended:
                entry["planted"] = {
                    "start": source.num_edges,
                    "count": int(appended),
                }
            edges[name] = entry
        nodes = {
            name: {
                "count": self.node_counts[name],
                "properties": self.node_property_names(name),
            }
            for name in self.schema.node_types
        }
        return {"nodes": nodes, "edges": edges}
