"""Experiment harnesses reproducing the paper's evaluation."""

from .figure34 import MATCHERS, ProtocolResult, make_graph, run_protocol
from .report import generate_report, render_markdown_table
from .scale import fixed_k, k_values, lfr_sizes, profile_name, rmat_scales
from .timing import (
    TimingResult,
    extrapolate_to_paper,
    time_sbm_part,
)

__all__ = [
    "MATCHERS",
    "ProtocolResult",
    "TimingResult",
    "extrapolate_to_paper",
    "generate_report",
    "render_markdown_table",
    "fixed_k",
    "k_values",
    "lfr_sizes",
    "make_graph",
    "profile_name",
    "rmat_scales",
    "run_protocol",
    "time_sbm_part",
]
