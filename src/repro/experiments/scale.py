"""Experiment scale profiles.

The paper evaluates LFR graphs of 10k/100k/1M nodes and R-MAT graphs of
scale 18/20/22 on a Xeon testbed.  Pure-Python defaults are scaled down
so the benchmark suite completes in minutes; set ``REPRO_SCALE=paper``
to run the original sizes (or ``medium`` for an intermediate profile).
Per-experiment tables in EXPERIMENTS.md state which profile produced
the recorded numbers.
"""

from __future__ import annotations

import os

__all__ = ["profile_name", "lfr_sizes", "rmat_scales", "fixed_k", "k_values"]

_PROFILES = {
    # name: (lfr sizes, rmat scales, largest-size index)
    "small": ([2_000, 5_000, 10_000], [12, 13, 14]),
    "medium": ([10_000, 30_000, 100_000], [14, 16, 18]),
    "paper": ([10_000, 100_000, 1_000_000], [18, 20, 22]),
}

#: The paper fixes k = 16 in Figure 3 and sweeps {4, 16, 64} in Figure 4.
FIXED_K = 16
K_VALUES = (4, 16, 64)


def profile_name():
    """Active profile: ``REPRO_SCALE`` env var, default "small"."""
    name = os.environ.get("REPRO_SCALE", "small").lower()
    if name not in _PROFILES:
        raise ValueError(
            f"REPRO_SCALE={name!r} unknown; choose from "
            f"{sorted(_PROFILES)}"
        )
    return name


def lfr_sizes():
    """LFR node counts for the active profile."""
    return list(_PROFILES[profile_name()][0])


def rmat_scales():
    """R-MAT scales (n = 2^scale) for the active profile."""
    return list(_PROFILES[profile_name()][1])


def fixed_k():
    """The Figure 3 number of property values."""
    return FIXED_K


def k_values():
    """The Figure 4 sweep of property-value counts."""
    return list(K_VALUES)
