"""The evaluation protocol of Figures 3 and 4 (Section 4.2).

Verbatim from the paper:

1. generate a graph ``g`` with LFR (avg degree 20, max degree 50,
   community sizes 10..50, mu 0.1) or R-MAT (defaults);
2. partition ``g`` into ``k`` groups with LDG, group sizes proportional
   to ``max(geo(0.4, i), 1/k)`` (the truncated geometric);
3. assign property value ``i`` to the nodes of partition ``i`` and
   measure the empirical joint ``P(X, Y)``;
4. build a PT with as many rows of value ``i`` as the size of
   partition ``i``;
5. run SBM-Part on (PT, P, g) with nodes arriving in random order;
6. compare the expected and observed CDFs over value pairs sorted by
   decreasing expected probability.

:func:`run_protocol` executes the whole pipeline for one configuration
and returns a :class:`ProtocolResult` with the comparison series and
timings — the benchmarks print these as the Figure 3/4 rows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.matching import (
    greedy_label_match,
    ldg_degree_match,
    random_match,
    sbm_part_match,
)
from ..partitioning import arrival_order, ldg_partition
from ..prng import RandomStream, derive_seed
from ..stats import (
    CdfComparison,
    TruncatedGeometric,
    compare_joints,
    empirical_joint,
)
from ..structure import LFR, RMat
from ..tables import PropertyTable

__all__ = ["ProtocolResult", "make_graph", "run_protocol", "MATCHERS"]

#: Matcher registry for the ablation benchmarks (A1).
MATCHERS = ("sbm_part", "random", "ldg", "greedy")


@dataclass
class ProtocolResult:
    """One Figure-3/4 cell.

    Attributes
    ----------
    label:
        e.g. ``"LFR(10k, 16)"`` — the subplot title in the paper.
    comparison:
        :class:`~repro.stats.CdfComparison` of expected vs observed.
    seconds_matching:
        wall-clock of the matching step alone (the paper's in-text
        performance claim concerns this number).
    num_nodes, num_edges, k:
        configuration echo.
    """

    label: str
    comparison: CdfComparison
    seconds_matching: float
    num_nodes: int
    num_edges: int
    k: int

    def row(self):
        """Summary dict for printed tables."""
        metrics = self.comparison.summary()
        return {
            "label": self.label,
            "n": self.num_nodes,
            "m": self.num_edges,
            "k": self.k,
            "ks": round(metrics["ks"], 4),
            "l1": round(metrics["l1"], 4),
            "js": round(metrics["js"], 5),
            "match_seconds": round(self.seconds_matching, 2),
        }


def make_graph(kind, size, seed):
    """Generate the evaluation input graph.

    ``kind`` is "lfr" (size = node count) or "rmat" (size = scale,
    n = 2^scale).  Parameters follow the paper exactly.
    """
    if kind == "lfr":
        generator = LFR(
            seed=seed,
            avg_degree=20,
            max_degree=50,
            min_community=10,
            max_community=50,
            mu=0.1,
        )
        return generator.run(size)
    if kind == "rmat":
        generator = RMat(seed=seed)
        return generator.run_scale(size)
    raise ValueError(f"unknown graph kind {kind!r}; use 'lfr' or 'rmat'")


def _match(matcher, ptable, joint, graph, order, seed):
    if matcher == "sbm_part":
        return sbm_part_match(ptable, joint, graph, order=order).mapping
    if matcher == "random":
        return random_match(ptable, graph, seed=seed)
    if matcher == "ldg":
        return ldg_degree_match(ptable, joint, graph, order=order).mapping
    if matcher == "greedy":
        return greedy_label_match(ptable, joint, graph, order=order).mapping
    raise ValueError(
        f"unknown matcher {matcher!r}; choose from {MATCHERS}"
    )


def run_protocol(
    kind,
    size,
    k,
    seed=0,
    matcher="sbm_part",
    order_kind="random",
    geometric_p=0.4,
    label=None,
):
    """Run the full Figure-3/4 protocol for one configuration.

    Parameters
    ----------
    kind, size:
        graph family and size (see :func:`make_graph`).
    k:
        number of distinct property values.
    seed:
        root seed (derives graph, LDG tie, arrival and matcher seeds).
    matcher:
        one of :data:`MATCHERS` — "sbm_part" is the paper's algorithm,
        the others are ablation baselines (A1).
    order_kind:
        node arrival order for the matcher stream; the paper uses
        "random" (ablation A2 varies this).
    geometric_p:
        the truncated-geometric parameter (paper: 0.4).
    """
    graph = make_graph(kind, size, derive_seed(seed, "graph"))
    n = graph.num_nodes

    # Step 2: ground-truth partitioning with LDG.
    sizes = TruncatedGeometric(geometric_p, k).sizes(n)
    labels = ldg_partition(
        graph,
        sizes,
        tie_stream=RandomStream(derive_seed(seed, "ldg-ties")),
    )

    # Step 3: measure the target joint.
    expected = empirical_joint(graph.tails, graph.heads, labels, k=k)

    # Step 4: the property table (value i repeated size_i times).
    observed_sizes = np.bincount(labels, minlength=k)
    ptable = PropertyTable(
        "protocol.value",
        np.repeat(np.arange(k, dtype=np.int64), observed_sizes),
    )

    # Step 5: match with the requested algorithm, random arrivals.
    order = arrival_order(
        graph,
        order_kind,
        stream=RandomStream(derive_seed(seed, "arrival")),
    )
    start = time.perf_counter()
    mapping = _match(
        matcher, ptable, expected, graph, order,
        derive_seed(seed, "matcher"),
    )
    elapsed = time.perf_counter() - start

    # Step 6: observed joint and CDF comparison.
    matched_values = ptable.values[mapping]
    observed = empirical_joint(
        graph.tails, graph.heads, matched_values, k=k
    )
    comparison = compare_joints(expected, observed)
    if label is None:
        size_text = f"{size}" if kind == "rmat" else f"{size // 1000}k"
        label = f"{kind.upper()}({size_text},{k})"
    return ProtocolResult(
        label=label,
        comparison=comparison,
        seconds_matching=elapsed,
        num_nodes=n,
        num_edges=graph.num_edges,
        k=k,
    )
