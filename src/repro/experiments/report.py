"""Markdown report generation for the reproduction experiments.

``generate_report()`` runs the Figure-3/4 protocol sweep, the matcher
ablation and a timing sample at the active scale profile, and renders
a self-contained markdown document — the machinery behind
EXPERIMENTS.md, exposed so users can regenerate the numbers on their
own hardware with one call (or ``datasynth report`` from the CLI).
"""

from __future__ import annotations

import io

from .figure34 import MATCHERS, run_protocol
from .scale import fixed_k, k_values, lfr_sizes, profile_name, rmat_scales
from .timing import extrapolate_to_paper, time_sbm_part

__all__ = ["generate_report", "render_markdown_table"]


def render_markdown_table(rows):
    """Render a list of dict rows as a GitHub-flavoured table."""
    if not rows:
        return "(no rows)\n"
    keys = list(rows[0])
    out = io.StringIO()
    out.write("| " + " | ".join(str(k) for k in keys) + " |\n")
    out.write("|" + "|".join("---" for _ in keys) + "|\n")
    for row in rows:
        out.write(
            "| " + " | ".join(str(row[k]) for k in keys) + " |\n"
        )
    return out.getvalue()


def generate_report(seed=0, include_figure4=True, include_ablation=True):
    """Run the experiment sweep and return the markdown text."""
    out = io.StringIO()
    out.write("# Reproduction report\n\n")
    out.write(f"Scale profile: `{profile_name()}` "
              f"(LFR {lfr_sizes()}, R-MAT scales {rmat_scales()})\n\n")

    # Figure 3.
    out.write("## Figure 3 — quality across sizes (k = "
              f"{fixed_k()})\n\n")
    rows = []
    for size in lfr_sizes():
        rows.append(run_protocol("lfr", size, fixed_k(), seed=seed).row())
    for scale in rmat_scales():
        rows.append(
            run_protocol("rmat", scale, fixed_k(), seed=seed).row()
        )
    out.write(render_markdown_table(rows) + "\n")

    # Figure 4.
    if include_figure4:
        out.write("## Figure 4 — quality across k\n\n")
        rows = []
        for k in k_values():
            rows.append(
                run_protocol("lfr", lfr_sizes()[-1], k, seed=seed).row()
            )
        for k in k_values():
            rows.append(
                run_protocol(
                    "rmat", rmat_scales()[-1], k, seed=seed
                ).row()
            )
        out.write(render_markdown_table(rows) + "\n")

    # Matcher ablation.
    if include_ablation:
        out.write("## Matcher ablation (A1)\n\n")
        rows = []
        for matcher in MATCHERS:
            result = run_protocol(
                "lfr", lfr_sizes()[0], fixed_k(), seed=seed,
                matcher=matcher,
            )
            rows.append({"matcher": matcher, **result.row()})
        out.write(render_markdown_table(rows) + "\n")

    # Timing.
    out.write("## Timing (P1)\n\n")
    measurement = time_sbm_part("rmat", rmat_scales()[0], fixed_k(),
                                seed=seed)
    extrapolated = extrapolate_to_paper(measurement)
    rows = [
        measurement.row(),
        {
            "graph": "rmat-22 (paper cfg, extrapolated)",
            "k": 64,
            "n": 1 << 22,
            "m": 67_000_000,
            "seconds": round(
                extrapolated["predicted_paper_seconds"], 1
            ),
            "edges_per_s": "-",
        },
        {
            "graph": "rmat-22 (paper reported)",
            "k": 64,
            "n": 1 << 22,
            "m": 67_000_000,
            "seconds": extrapolated["paper_reported_seconds"],
            "edges_per_s": "-",
        },
    ]
    out.write(render_markdown_table(rows) + "\n")
    return out.getvalue()
