"""Performance experiment (P1): SBM-Part wall-clock scaling.

The paper reports a single number: "it takes about 1100s to process the
largest problem, RMAT-22 (with 67M of edges) and 64 values, using a
single thread on an Intel Xeon E-2630 v3 at 2.4GHz.  No optimizations
of any kind have been implemented."

We time SBM-Part across R-MAT scales, report per-edge throughput, and
extrapolate to the paper's configuration — absolute wall-clock is
testbed-specific, but the per-edge cost model (linear in m, linear in
k via the O(k) candidate scoring) is checkable at any scale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.matching import sbm_part_match
from ..partitioning import arrival_order, ldg_partition
from ..prng import RandomStream, derive_seed
from ..stats import TruncatedGeometric, empirical_joint
from ..tables import PropertyTable
from .figure34 import make_graph

__all__ = ["TimingResult", "time_sbm_part", "extrapolate_to_paper"]

#: Paper configuration for the in-text claim.
PAPER_EDGES = 67_000_000
PAPER_K = 64
PAPER_SECONDS = 1100.0


@dataclass
class TimingResult:
    """One timing measurement."""

    kind: str
    size: int
    k: int
    num_nodes: int
    num_edges: int
    seconds: float

    @property
    def edges_per_second(self):
        return self.num_edges / self.seconds if self.seconds > 0 else 0.0

    def row(self):
        return {
            "graph": f"{self.kind}-{self.size}",
            "k": self.k,
            "n": self.num_nodes,
            "m": self.num_edges,
            "seconds": round(self.seconds, 2),
            "edges_per_s": int(self.edges_per_second),
        }


def time_sbm_part(kind, size, k, seed=0):
    """Time the matching step of the Figure-3/4 protocol."""
    graph = make_graph(kind, size, derive_seed(seed, "graph"))
    sizes = TruncatedGeometric(0.4, k).sizes(graph.num_nodes)
    labels = ldg_partition(graph, sizes)
    expected = empirical_joint(graph.tails, graph.heads, labels, k=k)
    ptable = PropertyTable(
        "timing.value",
        np.repeat(np.arange(k, dtype=np.int64),
                  np.bincount(labels, minlength=k)),
    )
    order = arrival_order(
        graph, "random",
        stream=RandomStream(derive_seed(seed, "arrival")),
    )
    start = time.perf_counter()
    sbm_part_match(ptable, expected, graph, order=order)
    elapsed = time.perf_counter() - start
    return TimingResult(
        kind=kind,
        size=size,
        k=k,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        seconds=elapsed,
    )


def extrapolate_to_paper(result):
    """Extrapolate a measurement to the paper's RMAT-22 / k=64 config.

    The cost model is ``seconds ≈ alpha * (m + n * k)``: each edge is
    touched O(1) times and each node evaluates k candidates.  We fit
    alpha from the measurement and predict the paper configuration
    (n = 2^22 nodes).

    Returns
    -------
    dict with the predicted seconds and the paper's reported 1100 s for
    side-by-side display.
    """
    ops = result.num_edges + result.num_nodes * result.k
    alpha = result.seconds / ops if ops else float("nan")
    paper_ops = PAPER_EDGES + (1 << 22) * PAPER_K
    return {
        "fitted_alpha_us": alpha * 1e6,
        "predicted_paper_seconds": alpha * paper_ops,
        "paper_reported_seconds": PAPER_SECONDS,
    }
