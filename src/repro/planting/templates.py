"""Pattern templates: the small subgraphs a plant injects.

A :class:`Template` is a tiny graph over *local* node ids ``0..k-1``
stored as parallel tail/head arrays, exactly the shape of an
:class:`~repro.tables.EdgeTable` — the injection stage maps local ids
onto sampled world ids and appends the mapped edges.

Templates come from two sources:

* **explicit edge lists** (``kind: edges``) — the user writes the
  pattern down, the way a real matching benchmark ships its query
  graphs;
* **grown motifs** (``ring``, ``star``, ``clique``, ``path``,
  ``tree``) — classic shapes parameterised only by ``size``.  The
  ``tree`` grower is the one randomised kind: node ``i`` attaches to a
  uniformly drawn earlier node, seeded off the plant's own
  counter-based substream so the shape is a pure function of
  ``(seed, plant name)``.

>>> t = make_template("q", "ring", size=4)
>>> t.size, t.num_edges
(4, 4)
>>> [tuple(e) for e in t.edge_list()]
[(0, 1), (1, 2), (2, 3), (3, 0)]
>>> make_template("q", "star", size=3).edge_list()
[(0, 1), (0, 2)]
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "PlantingError",
    "TEMPLATE_KINDS",
    "Template",
    "make_template",
]

#: Every recognised ``template.kind`` value, in documentation order.
TEMPLATE_KINDS = ("ring", "star", "clique", "path", "tree", "edges")


class PlantingError(ValueError):
    """Raised for invalid plant configurations."""


@dataclass(frozen=True)
class Template:
    """An immutable pattern graph over local node ids ``0..size-1``."""

    name: str
    kind: str
    size: int
    tails: np.ndarray
    heads: np.ndarray

    @property
    def num_edges(self):
        return int(self.tails.size)

    def edge_list(self):
        """Edges as a plain list of ``(tail, head)`` int tuples."""
        return [
            (int(t), int(h))
            for t, h in zip(self.tails, self.heads)
        ]

    def degrees(self, directed=False):
        """Per-node degree vector (undirected), or ``(out, in)``."""
        out = np.bincount(self.tails, minlength=self.size)
        inc = np.bincount(self.heads, minlength=self.size)
        if directed:
            return out, inc
        return out + inc

    def to_dict(self):
        """JSON-ready description (ground-truth manifests embed this)."""
        return {
            "kind": self.kind,
            "size": self.size,
            "edges": [[t, h] for t, h in self.edge_list()],
        }


def _grown_edges(kind, size, stream):
    if kind == "ring":
        if size < 3:
            raise PlantingError("ring template needs size >= 3")
        tails = np.arange(size, dtype=np.int64)
        return tails, (tails + 1) % size
    if kind == "star":
        if size < 2:
            raise PlantingError("star template needs size >= 2")
        heads = np.arange(1, size, dtype=np.int64)
        return np.zeros(size - 1, dtype=np.int64), heads
    if kind == "clique":
        if size < 2:
            raise PlantingError("clique template needs size >= 2")
        tails, heads = np.triu_indices(size, k=1)
        return tails.astype(np.int64), heads.astype(np.int64)
    if kind == "path":
        if size < 2:
            raise PlantingError("path template needs size >= 2")
        tails = np.arange(size - 1, dtype=np.int64)
        return tails, tails + 1
    if kind == "tree":
        if size < 2:
            raise PlantingError("tree template needs size >= 2")
        if stream is None:
            raise PlantingError("tree template needs a RandomStream")
        # Random recursive tree: node i attaches to a uniform earlier
        # node; each draw indexed by i so the shape is O(1)-seekable.
        parents = [
            int(stream.randint(np.asarray([i]), 0, i)[0])
            for i in range(1, size)
        ]
        return (
            np.asarray(parents, dtype=np.int64),
            np.arange(1, size, dtype=np.int64),
        )
    raise PlantingError(
        f"unknown template kind {kind!r}; one of {TEMPLATE_KINDS}"
    )


def _explicit_edges(name, edges):
    if not isinstance(edges, (list, tuple)) or not edges:
        raise PlantingError(
            f"plant {name!r}: template.edges must be a non-empty "
            "list of [tail, head] pairs"
        )
    tails, heads = [], []
    for pair in edges:
        if (
            not isinstance(pair, (list, tuple)) or len(pair) != 2
            or not all(
                isinstance(v, int) and not isinstance(v, bool)
                for v in pair
            )
        ):
            raise PlantingError(
                f"plant {name!r}: template edge {pair!r} is not an "
                "[int, int] pair"
            )
        tails.append(pair[0])
        heads.append(pair[1])
    tails = np.asarray(tails, dtype=np.int64)
    heads = np.asarray(heads, dtype=np.int64)
    if tails.min() < 0 or heads.min() < 0:
        raise PlantingError(
            f"plant {name!r}: template node ids must be >= 0"
        )
    size = int(max(tails.max(), heads.max())) + 1
    present = np.zeros(size, dtype=bool)
    present[tails] = True
    present[heads] = True
    if not present.all():
        missing = np.flatnonzero(~present).tolist()
        raise PlantingError(
            f"plant {name!r}: template ids must be dense 0..k-1; "
            f"ids {missing} appear in no edge"
        )
    return tails, heads, size


def make_template(name, kind, size=None, edges=None, stream=None,
                  directed=False):
    """Build and validate a :class:`Template`.

    ``edges`` is only valid (and required) for ``kind="edges"``; every
    other kind takes ``size``.  ``stream`` (a
    :class:`~repro.prng.RandomStream`) is required for the randomised
    ``tree`` kind.  ``directed=False`` additionally rejects reversed
    duplicate edges, which would collapse into one undirected edge.
    """
    if kind not in TEMPLATE_KINDS:
        raise PlantingError(
            f"plant {name!r}: unknown template kind {kind!r}; "
            f"one of {TEMPLATE_KINDS}"
        )
    if kind == "edges":
        if size is not None:
            raise PlantingError(
                f"plant {name!r}: template.size is derived from the "
                "edge list; drop it"
            )
        tails, heads, size = _explicit_edges(name, edges)
    else:
        if edges is not None:
            raise PlantingError(
                f"plant {name!r}: template.edges is only valid with "
                "kind 'edges'"
            )
        if size is None:
            raise PlantingError(
                f"plant {name!r}: template kind {kind!r} needs a size"
            )
        try:
            tails, heads = _grown_edges(kind, int(size), stream)
        except PlantingError as exc:
            raise PlantingError(f"plant {name!r}: {exc}") from None
        size = int(size)
    if (tails == heads).any():
        raise PlantingError(
            f"plant {name!r}: template contains a self-loop"
        )
    codes = tails * size + heads
    if np.unique(codes).size != codes.size:
        raise PlantingError(
            f"plant {name!r}: template contains duplicate edges"
        )
    if not directed:
        both = np.concatenate([codes, heads * size + tails])
        if np.unique(both).size != both.size:
            raise PlantingError(
                f"plant {name!r}: reversed duplicate edges collapse "
                "on an undirected edge type"
            )
    tails.setflags(write=False)
    heads.setflags(write=False)
    return Template(
        name=str(name), kind=kind, size=size, tails=tails, heads=heads
    )
