"""Plant planning: where each template lands in a generated world.

The planner is a **pure function** of ``(plant configs, node counts,
edge counts, root seed)``.  Both execution paths feed it the same
inputs — the serial/sharded :func:`~repro.scenarios.compile.
run_scenario` after generation, the virtual-graph serving layer after
topology resolution — so the resulting :class:`PlantPlan` is identical
everywhere, which is what makes planted exports byte-identical across
workers, backends and the serve path without any coordination.

Every random decision draws from the existing counter-based PRNG
substreams, namespaced per plant and per instance::

    derive_seed(root, "plant", name)            # the plant
      .substream("template")                    # tree growth
    derive_seed(plant, "instance:<j>")          # one injection
      .substream("nodes")                       # node-map sampling
      .substream("delete"|"rewire"|"corrupt")   # noise operators

Injection appends the mapped template edges *after* the generated
edges of the target type, so every base edge keeps its id and the
appended block is a contiguous, recordable ``[m, m+e)`` range — the
"id-range-local rewrite plus a bounded overlay" the sharded executor
and the virtual graph can both serve cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..prng import RandomStream, derive_seed
from .templates import PlantingError, Template, make_template

__all__ = [
    "CompiledPlant",
    "PlantInstance",
    "PlantPlan",
    "compile_plants",
    "plan_plants",
]

#: Noise operator names, in application order.
NOISE_KINDS = ("delete", "rewire", "corrupt")


@dataclass(frozen=True)
class CompiledPlant:
    """One validated ``plants.<name>`` recipe entry, template grown."""

    name: str
    edge: str
    node_type: str
    template: Template
    count: int = 1
    attributes: dict = field(default_factory=dict)
    noise: dict = field(default_factory=dict)

    def noise_rate(self, kind):
        return float(self.noise.get(kind, 0.0))


@dataclass
class PlantInstance:
    """One injected copy of a template.

    ``node_map[i]`` is the world id of template node ``i`` (injective,
    in ``[0, n)``).  ``edges`` records one dict per template edge:
    ``{"template": [a, b], "world": [u, v], "edge_id": int | None,
    "status": "planted" | "deleted" | "rewired"}`` (rewired entries
    add ``"rewired_to"``).  ``corrupted`` lists ``{"node", "property"}``
    pairs whose forced attribute was withheld by noise.
    """

    plant: str
    index: int
    node_map: np.ndarray
    edges: list = field(default_factory=list)
    corrupted: list = field(default_factory=list)

    def to_dict(self):
        return {
            "index": self.index,
            "nodes": [int(v) for v in self.node_map],
            "edges": self.edges,
            "corrupted": self.corrupted,
        }


@dataclass
class PlantPlan:
    """The full, deterministic outcome of planning every plant.

    Attributes
    ----------
    plants:
        the :class:`CompiledPlant` list, in recipe order.
    instances:
        every :class:`PlantInstance`, in (plant, index) order.
    appended:
        dict edge name -> ``(tails, heads)`` int64 arrays of the
        injected edges, in deterministic append order.  Appended edge
        ``i`` of type ``E`` has world edge id ``base_edge_count[E] + i``.
    overrides:
        dict ``"Type.prop"`` -> ``(ids, values)`` — sorted world node
        ids whose property value is forced by a plant's ``attributes``.
    node_counts / edge_counts:
        the world shape the plan was computed against (edge counts are
        the *base* counts, before injection).
    seed:
        the root seed.
    """

    plants: list
    instances: list
    appended: dict
    overrides: dict
    node_counts: dict
    edge_counts: dict
    seed: int

    def appended_count(self, edge_name):
        extra = self.appended.get(edge_name)
        return 0 if extra is None else int(extra[0].size)

    def instances_of(self, plant_name):
        return [
            inst for inst in self.instances if inst.plant == plant_name
        ]

    def to_dict(self):
        """The JSON-ready ground-truth document.

        This is what ``ground_truth.json`` holds and what the export
        manifests embed under ``"planting"`` — template, node maps,
        per-edge status, noise events, and the appended id ranges.
        """
        plants = {}
        for plant in self.plants:
            plants[plant.name] = {
                "edge": plant.edge,
                "node_type": plant.node_type,
                "template": plant.template.to_dict(),
                "count": plant.count,
                "attributes": dict(plant.attributes),
                "noise": {
                    kind: plant.noise_rate(kind)
                    for kind in NOISE_KINDS
                },
                "instances": [
                    inst.to_dict()
                    for inst in self.instances_of(plant.name)
                ],
            }
        return {
            "version": 1,
            "seed": int(self.seed),
            "plants": plants,
            "appended": {
                name: {
                    "start": int(self.edge_counts[name]),
                    "count": int(tails.size),
                }
                for name, (tails, _) in sorted(self.appended.items())
            },
        }


def compile_plants(plants_config, schema, seed):
    """Validate and lower ``plants:`` recipe entries.

    Checks everything the key registry cannot: the target edge type is
    monopartite (template nodes live in one id space), forced
    attributes name real properties of that node type, noise rates are
    probabilities, and the template itself is well-formed.  Raises
    :class:`~repro.planting.templates.PlantingError` with the recipe
    path on the first problem.
    """
    compiled = []
    for name, body in (plants_config or {}).items():
        where = f"plants.{name}"
        body = body or {}
        edge_name = body.get("edge")
        if edge_name not in schema.edge_types:
            raise PlantingError(
                f"{where}.edge: {edge_name!r} is not a declared edge "
                f"type (declared: {sorted(schema.edge_types)})"
            )
        edge = schema.edge_type(edge_name)
        if edge.tail_type != edge.head_type:
            raise PlantingError(
                f"{where}.edge: {edge_name!r} is bipartite "
                f"({edge.tail_type} -> {edge.head_type}); plants "
                "need a monopartite edge type"
            )
        node_type = schema.node_type(edge.tail_type)
        declared = {prop.name for prop in node_type.properties}
        attributes = dict(body.get("attributes") or {})
        for prop in attributes:
            if prop not in declared:
                raise PlantingError(
                    f"{where}.attributes: {edge.tail_type!r} has no "
                    f"property {prop!r} "
                    f"(declared: {sorted(declared)})"
                )
        noise = dict(body.get("noise") or {})
        for kind, rate in noise.items():
            if kind not in NOISE_KINDS:
                raise PlantingError(
                    f"{where}.noise: unknown operator {kind!r}; "
                    f"one of {NOISE_KINDS}"
                )
            if not 0.0 <= float(rate) <= 1.0:
                raise PlantingError(
                    f"{where}.noise.{kind}: rate {rate!r} is not a "
                    "probability"
                )
        count = int(body.get("count", 1))
        if count < 1:
            raise PlantingError(
                f"{where}.count: expected >= 1, got {count}"
            )
        template_body = body.get("template") or {}
        template_stream = RandomStream(
            derive_seed(seed, "plant", name)
        ).substream("template")
        try:
            template = make_template(
                name,
                template_body.get("kind"),
                size=template_body.get("size"),
                edges=template_body.get("edges"),
                stream=template_stream,
                directed=edge.directed,
            )
        except PlantingError as exc:
            raise PlantingError(f"{where}.template: {exc}") from None
        compiled.append(CompiledPlant(
            name=str(name),
            edge=str(edge_name),
            node_type=str(edge.tail_type),
            template=template,
            count=count,
            attributes=attributes,
            noise=noise,
        ))
    return compiled


def _sample_node_map(stream, k, n, used):
    """``k`` distinct world ids not in ``used``, by seeded rejection."""
    if n - len(used) < k:
        raise PlantingError(
            f"world too small: need {k} unused nodes, "
            f"{n - len(used)} of {n} remain"
        )
    node_map = np.empty(k, dtype=np.int64)
    chosen = set()
    counter = 0
    limit = 1000 * (k + 1)
    for slot in range(k):
        while True:
            if counter >= limit:
                raise PlantingError(
                    "node-map sampling did not converge; the world "
                    "is too densely planted"
                )
            candidate = int(
                stream.randint(np.asarray([counter]), 0, n)[0]
            )
            counter += 1
            if candidate not in used and candidate not in chosen:
                break
        chosen.add(candidate)
        node_map[slot] = candidate
    used.update(chosen)
    return node_map


def _plan_instance(plant, index, n, used, seed):
    """Plan one injection: node map, then the noise operators."""
    inst_seed = derive_seed(
        derive_seed(seed, "plant", plant.name), f"instance:{index}"
    )
    inst = RandomStream(inst_seed)
    node_map = _sample_node_map(
        inst.substream("nodes"), plant.template.size, n, used
    )
    template = plant.template
    e = template.num_edges
    delete_p = plant.noise_rate("delete")
    rewire_p = plant.noise_rate("rewire")
    corrupt_p = plant.noise_rate("corrupt")
    idx = np.arange(e)
    deleted = (
        inst.substream("delete").uniform(idx) < delete_p
        if delete_p > 0.0 else np.zeros(e, dtype=bool)
    )
    rewired = (
        inst.substream("rewire").uniform(idx) < rewire_p
        if rewire_p > 0.0 else np.zeros(e, dtype=bool)
    )
    rewire_stream = inst.substream("rewire").substream("target")
    instance = PlantInstance(
        plant=plant.name, index=index, node_map=node_map
    )
    tails, heads = [], []
    for j in range(e):
        a, b = int(template.tails[j]), int(template.heads[j])
        u, v = int(node_map[a]), int(node_map[b])
        record = {
            "template": [a, b],
            "world": [u, v],
            "edge_id": None,
            "status": "planted",
        }
        if deleted[j]:
            record["status"] = "deleted"
            instance.edges.append(record)
            continue
        if rewired[j]:
            # Redirect the head to a uniform world node that keeps the
            # edge simple; a handful of indexed retries suffices.
            target = v
            for attempt in range(64):
                draw = int(rewire_stream.randint(
                    np.asarray([j * 64 + attempt]), 0, n
                )[0])
                if draw != u and draw != v:
                    target = draw
                    break
            record["status"] = "rewired"
            record["rewired_to"] = target
            v = target
        tails.append(u)
        heads.append(v)
        instance.edges.append(record)
    if corrupt_p > 0.0 and plant.attributes:
        corrupt = inst.substream("corrupt")
        props = sorted(plant.attributes)
        for slot in range(template.size):
            for p_idx, prop in enumerate(props):
                draw = float(corrupt.uniform(
                    np.asarray([slot * len(props) + p_idx])
                )[0])
                if draw < corrupt_p:
                    instance.corrupted.append({
                        "node": int(node_map[slot]),
                        "property": prop,
                    })
    return instance, tails, heads


def plan_plants(plants, node_counts, edge_counts, seed):
    """Compute the :class:`PlantPlan` for a world of the given shape.

    ``node_counts`` maps node type -> count, ``edge_counts`` maps edge
    type -> *base* (pre-injection) edge count.  Node maps are kept
    disjoint across every instance of every plant, so injected
    patterns never merge into accidental larger ones.
    """
    instances = []
    appended = {}
    overrides = {}
    used_by_type = {}
    for plant in plants:
        n = int(node_counts[plant.node_type])
        used = used_by_type.setdefault(plant.node_type, set())
        acc = appended.setdefault(plant.edge, ([], []))
        for index in range(plant.count):
            try:
                instance, tails, heads = _plan_instance(
                    plant, index, n, used, seed
                )
            except PlantingError as exc:
                raise PlantingError(
                    f"plants.{plant.name} instance {index}: {exc}"
                ) from None
            acc[0].extend(tails)
            acc[1].extend(heads)
            instances.append(instance)
    # Assign world edge ids to the surviving appended edges, in the
    # exact order they were accumulated.
    positions = {name: 0 for name in appended}
    for instance in instances:
        plant = next(
            p for p in plants if p.name == instance.plant
        )
        for record in instance.edges:
            if record["status"] == "deleted":
                continue
            base = int(edge_counts[plant.edge])
            record["edge_id"] = base + positions[plant.edge]
            positions[plant.edge] += 1
    appended = {
        name: (
            np.asarray(tails, dtype=np.int64),
            np.asarray(heads, dtype=np.int64),
        )
        for name, (tails, heads) in appended.items()
        if tails
    }
    # Forced attributes -> per-column override arrays (minus the
    # corrupt-noise withheld pairs).
    pending = {}
    for plant in plants:
        if not plant.attributes:
            continue
        withheld = {
            (entry["node"], entry["property"])
            for inst in (
                i for i in instances if i.plant == plant.name
            )
            for entry in inst.corrupted
        }
        for inst in instances:
            if inst.plant != plant.name:
                continue
            for prop, value in plant.attributes.items():
                key = f"{plant.node_type}.{prop}"
                column = pending.setdefault(key, ({}, ))[0]
                for world_id in inst.node_map:
                    wid = int(world_id)
                    if (wid, prop) in withheld:
                        continue
                    column[wid] = value
    for key, (column,) in pending.items():
        if not column:
            continue
        ids = np.asarray(sorted(column), dtype=np.int64)
        values = np.asarray([column[int(i)] for i in ids])
        overrides[key] = (ids, values)
    return PlantPlan(
        plants=list(plants),
        instances=instances,
        appended=appended,
        overrides=overrides,
        node_counts=dict(node_counts),
        edge_counts={
            name: int(edge_counts[name])
            for name in sorted(edge_counts)
        },
        seed=int(seed),
    )
