"""Ground-truth pattern planting.

Generated graphs double as *evaluation suites*: a plant embeds a known
template subgraph into the generated world with a recorded node map
and optional seeded noise, and the exporters emit the
``(template, world, ground_truth)`` triple a subgraph-matching
benchmark instance needs (the shape of
``matching_problem.ground_truth_provided`` in the UCLA subgraph
matching codebase).  The baseline matcher in
:mod:`repro.graphstats.matching` closes the loop: at zero noise it
must recover every plant exactly.

See ``docs/planting.md`` for the template spec, the noise model, and
the ground-truth manifest format.
"""

from .overlay import (
    AppendedPropertyTable,
    OverlayEdgeTable,
    OverlayPropertyTable,
    PlantedGraph,
    planted_graph,
)
from .plant import (
    CompiledPlant,
    PlantInstance,
    PlantPlan,
    compile_plants,
    plan_plants,
)
from .templates import (
    TEMPLATE_KINDS,
    PlantingError,
    Template,
    make_template,
)

__all__ = [
    "AppendedPropertyTable",
    "CompiledPlant",
    "OverlayEdgeTable",
    "OverlayPropertyTable",
    "PlantInstance",
    "PlantPlan",
    "PlantedGraph",
    "PlantingError",
    "TEMPLATE_KINDS",
    "Template",
    "compile_plants",
    "make_template",
    "plan_plants",
    "planted_graph",
]
