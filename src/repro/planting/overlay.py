"""Bounded overlays: planted worlds without rewriting the base tables.

Injection never mutates generated tables.  Instead each affected table
is wrapped:

* :class:`OverlayEdgeTable` — the base edge table plus the appended
  plant edges as a contiguous tail block (``[m, m+e)``);
* :class:`OverlayPropertyTable` — the base node-property column with a
  sparse set of forced values patched in;
* :class:`AppendedPropertyTable` — an edge-property column extended
  with the deterministic values of the appended edge ids.

All three speak the exact table dialect the streaming exporters and
the sharded export pool consume — ``read_range`` (the dispatch hook of
:func:`repro.io.chunks.property_range` / ``edge_range``),
``iter_chunks`` with global chunk starts, ``values`` / ``tails`` /
``heads`` for whole-table consumers, ``gather`` — and they pickle
(the overlay arrays are tiny; spooled bases already pickle as paths),
so ``--backend process`` export formatting keeps working over planted
worlds.

:class:`PlantedGraph` assembles the wrapped tables into a
:class:`~repro.core.result.PropertyGraph` subclass that carries the
:class:`~repro.planting.plant.PlantPlan` as ``.plan``.
"""

from __future__ import annotations

import numpy as np

from ..core.result import PropertyGraph
from ..io.chunks import edge_range, property_range

__all__ = [
    "AppendedPropertyTable",
    "OverlayEdgeTable",
    "OverlayPropertyTable",
    "PlantedGraph",
    "planted_graph",
]


def _iter_chunk_starts(name, length, chunk_size, start, stop):
    chunk_size = int(chunk_size)
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    start = int(start)
    stop = length if stop is None else min(int(stop), length)
    if not 0 <= start <= length:
        raise IndexError(
            f"{name!r}: start {start} out of range [0, {length}]"
        )
    for lo in range(start, stop, chunk_size):
        yield lo, min(lo + chunk_size, stop)


class _LazyValues:
    """Array-like view over a table's ``read_range`` (the slice of the
    column protocol the chunked writers actually use)."""

    def __init__(self, table, dtype):
        self._table = table
        self.dtype = dtype

    def __len__(self):
        return len(self._table)

    def __getitem__(self, item):
        if isinstance(item, slice):
            start, stop, step = item.indices(len(self._table))
            values = self._table.read_range(start, stop)
            return values if step == 1 else values[::step]
        index = int(item)
        if index < 0:
            index += len(self._table)
        return self._table.read_range(index, index + 1)[0]

    def __array__(self, dtype=None, copy=None):
        values = self._table.read_range(0, len(self._table))
        return values if dtype is None else values.astype(dtype)

    def __iter__(self):
        for lo, hi in _iter_chunk_starts(
            "values", len(self._table), 65_536, 0, None
        ):
            yield from self._table.read_range(lo, hi)


class OverlayEdgeTable:
    """Base edge table + appended plant edges as ids ``[m, m+e)``."""

    def __init__(self, base, extra_tails, extra_heads):
        self._base = base
        self._extra_tails = np.asarray(extra_tails, dtype=np.int64)
        self._extra_heads = np.asarray(extra_heads, dtype=np.int64)
        self.name = base.name
        self.num_tail_nodes = int(base.num_tail_nodes)
        self.num_head_nodes = int(base.num_head_nodes)
        self.directed = bool(base.directed)
        self._base_len = len(base)

    def __len__(self):
        return self._base_len + self._extra_tails.size

    def __repr__(self):
        return (
            f"OverlayEdgeTable(name={self.name!r}, "
            f"base={self._base_len}, extra={self._extra_tails.size})"
        )

    @property
    def base(self):
        return self._base

    @property
    def num_edges(self):
        return len(self)

    @property
    def num_base_edges(self):
        return self._base_len

    @property
    def is_bipartite(self):
        return self.num_tail_nodes != self.num_head_nodes

    @property
    def num_nodes(self):
        if self.is_bipartite:
            raise ValueError(
                f"ET {self.name!r} is bipartite; use num_tail_nodes / "
                "num_head_nodes"
            )
        return self.num_tail_nodes

    def read_range(self, start, stop):
        start, stop = int(start), int(stop)
        if not 0 <= start <= stop <= len(self):
            raise IndexError(
                f"ET {self.name!r}: range [{start}, {stop}) out of "
                f"bounds [0, {len(self)})"
            )
        m = self._base_len
        parts_t, parts_h = [], []
        if start < m:
            lo, hi = start, min(stop, m)
            tails, heads = edge_range(self._base, lo, hi)
            parts_t.append(np.asarray(tails, dtype=np.int64))
            parts_h.append(np.asarray(heads, dtype=np.int64))
        if stop > m:
            lo, hi = max(start, m) - m, stop - m
            parts_t.append(self._extra_tails[lo:hi])
            parts_h.append(self._extra_heads[lo:hi])
        if not parts_t:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        if len(parts_t) == 1:
            return parts_t[0], parts_h[0]
        return np.concatenate(parts_t), np.concatenate(parts_h)

    def iter_chunks(self, chunk_size, start=0, stop=None):
        for lo, hi in _iter_chunk_starts(
            self.name, len(self), chunk_size, start, stop
        ):
            tails, heads = self.read_range(lo, hi)
            yield lo, tails, heads

    @property
    def tails(self):
        return self.read_range(0, len(self))[0]

    @property
    def heads(self):
        return self.read_range(0, len(self))[1]

    def degrees(self):
        """Undirected degree vector (monopartite only)."""
        n = self.num_nodes
        counts = np.zeros(n, dtype=np.int64)
        for _, tails, heads in self.iter_chunks(65_536):
            counts += np.bincount(tails, minlength=n)
            counts += np.bincount(heads, minlength=n)
        return counts

    def to_edge_table(self):
        """Materialise into a plain :class:`~repro.tables.EdgeTable`."""
        from ..tables import EdgeTable

        tails, heads = self.read_range(0, len(self))
        return EdgeTable(
            self.name, tails, heads,
            num_tail_nodes=self.num_tail_nodes,
            num_head_nodes=self.num_head_nodes,
            directed=self.directed,
        )


def _base_dtype(table):
    dtype = getattr(table, "dtype", None)
    if dtype is not None:
        return np.dtype(dtype)
    return np.asarray(table.values).dtype


def apply_overrides(values, start, ids, override_values):
    """Patch ``values`` (rows ``[start, start+len)``) with the sorted
    override ``(ids, override_values)`` pairs that fall inside it,
    promoting the dtype so wider forced strings never truncate."""
    stop = start + len(values)
    lo = int(np.searchsorted(ids, start))
    hi = int(np.searchsorted(ids, stop))
    if lo == hi:
        return values
    dtype = np.promote_types(values.dtype, override_values.dtype)
    patched = values.astype(dtype, copy=True)
    patched[ids[lo:hi] - start] = override_values[lo:hi]
    return patched


class OverlayPropertyTable:
    """Base property column with sparse forced values patched in."""

    def __init__(self, base, ids, values):
        self._base = base
        self._ids = np.asarray(ids, dtype=np.int64)
        self._values = np.asarray(values)
        self.name = base.name
        self.dtype = np.promote_types(
            _base_dtype(base), self._values.dtype
        )

    def __len__(self):
        return len(self._base)

    def __repr__(self):
        return (
            f"OverlayPropertyTable(name={self.name!r}, "
            f"n={len(self)}, overrides={self._ids.size})"
        )

    @property
    def base(self):
        return self._base

    def read_range(self, start, stop):
        start, stop = int(start), int(stop)
        values = np.asarray(property_range(self._base, start, stop))
        patched = apply_overrides(
            values, start, self._ids, self._values
        )
        if patched.dtype != self.dtype:
            patched = patched.astype(self.dtype)
        return patched

    def iter_chunks(self, chunk_size, start=0, stop=None):
        for lo, hi in _iter_chunk_starts(
            self.name, len(self), chunk_size, start, stop
        ):
            yield lo, self.read_range(lo, hi)

    @property
    def values(self):
        return _LazyValues(self, self.dtype)

    def gather(self, instance_ids):
        wanted = np.asarray(instance_ids, dtype=np.int64)
        if hasattr(self._base, "gather"):
            out = np.asarray(self._base.gather(wanted))
        else:
            out = np.asarray(self._base.values)[wanted]
        pos = np.searchsorted(self._ids, wanted)
        pos = np.minimum(pos, self._ids.size - 1)
        hit = self._ids[pos] == wanted
        if hit.any():
            out = out.astype(
                np.promote_types(out.dtype, self._values.dtype),
                copy=True,
            )
            out[hit] = self._values[pos[hit]]
        return out

    def codes(self):
        """Category codes (audit path); mirrors ``PropertyTable``."""
        values = self.read_range(0, len(self))
        categories, codes = np.unique(values, return_inverse=True)
        return codes.astype(np.int64), categories

    def to_property_table(self):
        from ..tables import PropertyTable

        return PropertyTable(self.name, self.read_range(0, len(self)))


class AppendedPropertyTable:
    """Edge-property column extended over the appended edge ids."""

    def __init__(self, base, extra_values):
        self._base = base
        self._extra = np.asarray(extra_values)
        self.name = base.name
        self.dtype = np.promote_types(
            _base_dtype(base), self._extra.dtype
        )
        self._base_len = len(base)

    def __len__(self):
        return self._base_len + self._extra.size

    def __repr__(self):
        return (
            f"AppendedPropertyTable(name={self.name!r}, "
            f"base={self._base_len}, extra={self._extra.size})"
        )

    def read_range(self, start, stop):
        start, stop = int(start), int(stop)
        if not 0 <= start <= stop <= len(self):
            raise IndexError(
                f"PT {self.name!r}: range [{start}, {stop}) out of "
                f"bounds [0, {len(self)})"
            )
        m = self._base_len
        parts = []
        if start < m:
            parts.append(np.asarray(
                property_range(self._base, start, min(stop, m))
            ))
        if stop > m:
            parts.append(self._extra[max(start, m) - m: stop - m])
        if not parts:
            return np.empty(0, dtype=self.dtype)
        part = (
            parts[0] if len(parts) == 1 else np.concatenate([
                p.astype(self.dtype) for p in parts
            ])
        )
        if part.dtype != self.dtype:
            part = part.astype(self.dtype)
        return part

    def iter_chunks(self, chunk_size, start=0, stop=None):
        for lo, hi in _iter_chunk_starts(
            self.name, len(self), chunk_size, start, stop
        ):
            yield lo, self.read_range(lo, hi)

    @property
    def values(self):
        return _LazyValues(self, self.dtype)

    def gather(self, instance_ids):
        ids = np.asarray(instance_ids, dtype=np.int64)
        out = np.empty(ids.size, dtype=self.dtype)
        base_mask = ids < self._base_len
        if base_mask.any():
            base_ids = ids[base_mask]
            if hasattr(self._base, "gather"):
                got = self._base.gather(base_ids)
            else:
                got = np.asarray(self._base.values)[base_ids]
            out[base_mask] = got
        if (~base_mask).any():
            out[~base_mask] = self._extra[
                ids[~base_mask] - self._base_len
            ]
        return out

    def to_property_table(self):
        from ..tables import PropertyTable

        return PropertyTable(self.name, self.read_range(0, len(self)))


def _appended_edge_property_values(schema, edge_name, prop,
                                   extra_tails, extra_heads,
                                   node_properties, computed, base_m,
                                   seed):
    """Deterministic values of one edge property over the appended ids.

    Uses the same random-access kernel as the serving layer
    (:func:`~repro.core.tasks.property_values_at` on the
    ``property:<edge>.<prop>`` task stream), so the appended rows are
    exactly what a full-size generation run would have produced at
    those edge ids.  ``tail.<p>`` / ``head.<p>`` dependencies gather
    from the *overlay* node columns, so forced plant attributes feed
    dependent edge properties.
    """
    from ..core.tasks import property_values_at

    edge = schema.edge_type(edge_name)
    deps = []
    for dep in prop.depends_on:
        if dep.startswith("tail."):
            pt = node_properties[f"{edge.tail_type}.{dep[5:]}"]
            deps.append(pt.gather(extra_tails))
        elif dep.startswith("head."):
            pt = node_properties[f"{edge.head_type}.{dep[5:]}"]
            deps.append(pt.gather(extra_heads))
        else:
            deps.append(computed[dep])
    ids = np.arange(
        base_m, base_m + extra_tails.size, dtype=np.int64
    )
    return property_values_at(
        prop.generator, f"property:{edge_name}.{prop.name}", seed,
        ids, dep_slices=deps,
    )


class PlantedGraph(PropertyGraph):
    """A generated world with its plant plan applied as overlays.

    Behaves like the base :class:`~repro.core.result.PropertyGraph`
    everywhere (exports, audits, summaries) but additionally carries:

    ``plan``
        the :class:`~repro.planting.plant.PlantPlan`;
    ``base``
        the unplanted graph (in-memory or sharded).

    ``materialize()`` returns a plain in-memory ``PropertyGraph`` with
    every overlay resolved; ``cleanup()`` forwards to a sharded base.
    """

    def __init__(self, base, plan):
        super().__init__(base.schema, base.seed)
        self.base = base
        self.plan = plan
        self.node_counts = dict(base.node_counts)
        self.match_results = dict(
            getattr(base, "match_results", {}) or {}
        )
        for key, table in base.node_properties.items():
            override = plan.overrides.get(key)
            self.node_properties[key] = (
                OverlayPropertyTable(table, *override)
                if override is not None else table
            )
        for name, table in base.edge_tables.items():
            extra = plan.appended.get(name)
            if extra is None:
                self.edge_tables[name] = table
                continue
            self.edge_tables[name] = OverlayEdgeTable(table, *extra)
        for key, table in base.edge_properties.items():
            edge_name, _, prop_name = key.partition(".")
            if edge_name not in plan.appended:
                self.edge_properties[key] = table
        for name, (extra_tails, extra_heads) in plan.appended.items():
            edge = base.schema.edge_type(name)
            base_m = int(plan.edge_counts[name])
            computed = {}
            for prop in edge.properties:
                extra_values = _appended_edge_property_values(
                    base.schema, name, prop, extra_tails, extra_heads,
                    self.node_properties, computed, base_m, base.seed,
                )
                computed[prop.name] = extra_values
                key = f"{name}.{prop.name}"
                self.edge_properties[key] = AppendedPropertyTable(
                    base.edge_properties[key], extra_values
                )

    def materialize(self):
        """A plain in-memory graph with every overlay resolved."""
        base = self.base
        if hasattr(base, "materialize"):
            base = base.materialize()
        graph = PropertyGraph(self.schema, self.seed)
        graph.node_counts = dict(self.node_counts)
        graph.match_results = dict(self.match_results)
        for key, table in self.node_properties.items():
            if isinstance(table, OverlayPropertyTable):
                graph.node_properties[key] = table.to_property_table()
            else:
                graph.node_properties[key] = base.node_properties[key]
        for name, table in self.edge_tables.items():
            if isinstance(table, OverlayEdgeTable):
                graph.edge_tables[name] = table.to_edge_table()
            else:
                graph.edge_tables[name] = base.edge_tables[name]
        for key, table in self.edge_properties.items():
            if isinstance(table, AppendedPropertyTable):
                graph.edge_properties[key] = table.to_property_table()
            else:
                graph.edge_properties[key] = base.edge_properties[key]
        return graph

    def cleanup(self):
        if hasattr(self.base, "cleanup"):
            self.base.cleanup()


def planted_graph(base, plan):
    """Wrap ``base`` with ``plan``; no-op pass-through for empty plans."""
    if not plan.plants:
        return base
    return PlantedGraph(base, plan)
