"""Baseline subgraph matcher: vectorised candidate filtering.

The correctness oracle of the planting subsystem
(:mod:`repro.planting`): a deliberately simple, fully vectorised
filter-and-enumerate matcher in the spirit of the candidate routines a
matching benchmark harness ships — strong enough that at zero noise it
must recover **every** planted template exactly, cheap enough to run
in CI over every planted zoo recipe.

Pipeline
--------
1. **Degree filter** — world node ``u`` is a candidate for template
   node ``t`` only if its degree dominates ``t``'s template degree
   (out/in separately on directed edge types).
2. **Attribute-label filter** — per-template-node ``(property,
   value)`` constraints (a plant's forced ``attributes``) mask the
   candidate sets down to matching labels.
3. **Edgewise neighbourhood pruning** — iterate to fixpoint: for every
   template edge ``(a, b)``, a candidate for ``a`` survives only if at
   least one of its world neighbours is still a candidate for ``b``
   (both directions; one ``np.bincount`` per side per pass).
4. **Backtracking enumeration** — template nodes ordered
   smallest-candidate-set-first (connected to the placed prefix when
   possible); adjacency membership answered by binary search over the
   packed sorted edge codes.

>>> import numpy as np
>>> tails = np.array([0, 1, 2, 9])     # a 3-ring plus a stray edge
>>> heads = np.array([1, 2, 0, 3])
>>> t = TemplateQuery(np.array([0, 1, 2]), np.array([1, 2, 0]), 3)
>>> result = match_template(t, tails, heads, 10)
>>> min(tuple(int(v) for v in row) for row in result.matches)
(0, 1, 2)
>>> result.num_matches            # 3 rotations x 2 orientations
6
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "MatchResult",
    "TemplateQuery",
    "match_template",
    "verify_plants",
]


@dataclass(frozen=True)
class TemplateQuery:
    """A pattern to search for: local edges + optional label constraints.

    ``labels`` maps template-node id -> list of ``(column, value)``
    pairs; ``column`` is a world node-property array aligned with node
    ids.
    """

    tails: np.ndarray
    heads: np.ndarray
    size: int
    directed: bool = False
    labels: dict = field(default_factory=dict)


@dataclass
class MatchResult:
    """All embeddings found, plus the filtering diagnostics."""

    matches: np.ndarray          # (num_matches, template size)
    candidate_counts: list       # per template node, post-pruning
    prune_rounds: int
    seconds: float
    truncated: bool = False

    @property
    def num_matches(self):
        return int(self.matches.shape[0])

    def contains(self, node_map):
        """Is the exact assignment ``node_map`` among the matches?"""
        wanted = np.asarray(node_map, dtype=np.int64)
        if self.matches.size == 0:
            return False
        return bool((self.matches == wanted).all(axis=1).any())


def _neighbor_hits(tails, heads, mask, n):
    """Bool[n]: nodes with >= 1 edge endpoint into ``mask`` nodes."""
    hits = np.zeros(n, dtype=bool)
    take = mask[heads]
    if take.any():
        hits[tails[take]] = True
    return hits


def _prune(candidates, t_tails, t_heads, tails, heads, n, directed):
    """Edgewise neighbourhood pruning to fixpoint."""
    rounds = 0
    changed = True
    while changed:
        changed = False
        rounds += 1
        for a, b in zip(t_tails, t_heads):
            # Candidates of `a` need an out-neighbour in cand[b];
            # candidates of `b` need an in-neighbour in cand[a].
            hits_a = _neighbor_hits(tails, heads, candidates[b], n)
            if not directed:
                hits_a |= _neighbor_hits(
                    heads, tails, candidates[b], n
                )
            kept = candidates[a] & hits_a
            if kept.sum() != candidates[a].sum():
                candidates[a] = kept
                changed = True
            hits_b = _neighbor_hits(heads, tails, candidates[a], n)
            if not directed:
                hits_b |= _neighbor_hits(
                    tails, heads, candidates[a], n
                )
            kept = candidates[b] & hits_b
            if kept.sum() != candidates[b].sum():
                candidates[b] = kept
                changed = True
        if rounds > len(t_tails) * 4 + 8:
            break  # safety valve; fixpoint is normally 2-3 rounds
    return rounds


def _adjacency_csr(tails, heads, n, directed):
    """Sorted neighbour lists (symmetrised when undirected)."""
    if directed:
        src, dst = tails, heads
    else:
        src = np.concatenate([tails, heads])
        dst = np.concatenate([heads, tails])
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    starts = np.searchsorted(src, np.arange(n + 1))
    return starts, dst


def _match_order(t_tails, t_heads, size, counts):
    """Template-node visit order: smallest candidate set first, then
    greedily extend along template edges."""
    adj = [set() for _ in range(size)]
    for a, b in zip(t_tails, t_heads):
        adj[a].add(b)
        adj[b].add(a)
    remaining = set(range(size))
    order = []
    while remaining:
        frontier = {
            t for t in remaining
            if any(s not in remaining for s in adj[t])
        } or remaining
        pick = min(frontier, key=lambda t: (counts[t], t))
        order.append(pick)
        remaining.discard(pick)
    return order


def match_template(query, tails, heads, num_nodes, max_matches=None):
    """Find every embedding of ``query`` in the world edge list.

    ``tails`` / ``heads`` are the world edge arrays (each undirected
    edge stored once, either orientation), ``num_nodes`` the node
    count.  Returns a :class:`MatchResult`; ``max_matches`` caps the
    enumeration (sets ``truncated`` when hit).
    """
    started = time.perf_counter()
    tails = np.ascontiguousarray(tails, dtype=np.int64)
    heads = np.ascontiguousarray(heads, dtype=np.int64)
    n = int(num_nodes)
    size = int(query.size)
    t_tails = np.asarray(query.tails, dtype=np.int64)
    t_heads = np.asarray(query.heads, dtype=np.int64)
    directed = bool(query.directed)

    # 1. degree filter
    out_deg = np.bincount(tails, minlength=n)
    in_deg = np.bincount(heads, minlength=n)
    t_out = np.bincount(t_tails, minlength=size)
    t_in = np.bincount(t_heads, minlength=size)
    candidates = []
    for t in range(size):
        if directed:
            mask = (out_deg >= t_out[t]) & (in_deg >= t_in[t])
        else:
            mask = (out_deg + in_deg) >= (t_out[t] + t_in[t])
        # 2. attribute-label filter
        for column, value in query.labels.get(t, ()):
            mask = mask & (np.asarray(column) == value)
        candidates.append(mask)

    # 3. edgewise neighbourhood pruning
    rounds = _prune(
        candidates, t_tails, t_heads, tails, heads, n, directed
    )
    counts = [int(mask.sum()) for mask in candidates]

    # 4. backtracking enumeration
    starts, neigh = _adjacency_csr(tails, heads, n, directed)
    if directed:
        r_starts, r_neigh = _adjacency_csr(heads, tails, n, True)
    else:
        r_starts, r_neigh = starts, neigh
    order = _match_order(t_tails, t_heads, size, counts)
    position = {t: i for i, t in enumerate(order)}
    # Per visit step: constraints against already-placed nodes.
    step_edges = [[] for _ in range(size)]
    for a, b in zip(t_tails, t_heads):
        first, second = (a, b) if position[a] < position[b] else (b, a)
        # direction flag: does the template edge leave `second`?
        step_edges[position[second]].append((first, int(a == second)))
    matches = []
    assignment = np.full(size, -1, dtype=np.int64)
    used = set()
    truncated = False

    def neighbors_out(u):
        return neigh[starts[u]:starts[u + 1]]

    def neighbors_in(u):
        return r_neigh[r_starts[u]:r_starts[u + 1]]

    def extend(step):
        nonlocal truncated
        if truncated:
            return
        if step == size:
            matches.append(assignment.copy())
            if max_matches is not None \
                    and len(matches) >= max_matches:
                truncated = True
            return
        t = order[step]
        anchors = step_edges[step]
        if anchors:
            placed, outgoing = anchors[0]
            u = int(assignment[placed])
            pool = (
                neighbors_in(u) if directed and outgoing
                else neighbors_out(u)
            )
            pool = np.unique(pool)
        else:
            pool = np.flatnonzero(candidates[t])
        mask = candidates[t][pool]
        pool = pool[mask]
        for v in pool:
            v = int(v)
            if v in used:
                continue
            ok = True
            for placed, outgoing in anchors[1:]:
                u = int(assignment[placed])
                wanted = (
                    neighbors_in(u) if directed and outgoing
                    else neighbors_out(u)
                )
                at = np.searchsorted(np.sort(wanted), v)
                srt = np.sort(wanted)
                if at >= srt.size or srt[at] != v:
                    ok = False
                    break
            if not ok:
                continue
            assignment[t] = v
            used.add(v)
            extend(step + 1)
            used.discard(v)
            assignment[t] = -1
            if truncated:
                return

    extend(0)
    result = np.asarray(matches, dtype=np.int64)
    if result.size == 0:
        result = result.reshape(0, size)
    return MatchResult(
        matches=result,
        candidate_counts=counts,
        prune_rounds=rounds,
        seconds=time.perf_counter() - started,
        truncated=truncated,
    )


def _query_for_plant(graph, plant):
    """Build the :class:`TemplateQuery` a plant's ground truth implies."""
    template = plant.template
    edge = graph.schema.edge_type(plant.edge)
    labels = {}
    if plant.attributes:
        constraints = []
        for prop, value in sorted(plant.attributes.items()):
            column = np.asarray(
                graph.node_property(plant.node_type, prop).values
            )
            constraints.append((column, value))
        labels = {t: constraints for t in range(template.size)}
    return TemplateQuery(
        tails=template.tails,
        heads=template.heads,
        size=template.size,
        directed=edge.directed,
        labels=labels,
    )


def verify_plants(graph, plan, max_matches=200_000):
    """Run the baseline matcher over every plant of a planted graph.

    ``graph`` is a (materialisable) planted
    :class:`~repro.core.result.PropertyGraph`, ``plan`` its
    :class:`~repro.planting.plant.PlantPlan`.  Returns a report dict:
    per plant — matches found, instances recovered (exact node-map
    membership), recall, matcher wall time and world rows/sec — plus
    the overall recall.  At zero noise the acceptance bar is overall
    ``recall == 1.0``.
    """
    plants = {}
    total = recovered_total = 0
    for plant in plan.plants:
        table = graph.edges(plant.edge)
        tails = np.asarray(table.tails)
        heads = np.asarray(table.heads)
        n = int(graph.num_nodes(plant.node_type))
        query = _query_for_plant(graph, plant)
        result = match_template(
            query, tails, heads, n, max_matches=max_matches
        )
        instances = plan.instances_of(plant.name)
        recovered = sum(
            1 for inst in instances if result.contains(inst.node_map)
        )
        total += len(instances)
        recovered_total += recovered
        rows = int(tails.size)
        plants[plant.name] = {
            "edge": plant.edge,
            "template": plant.template.to_dict(),
            "instances": len(instances),
            "recovered": recovered,
            "recall": (
                recovered / len(instances) if instances else 1.0
            ),
            "matches": result.num_matches,
            "truncated": result.truncated,
            "candidate_counts": result.candidate_counts,
            "prune_rounds": result.prune_rounds,
            "seconds": round(result.seconds, 6),
            "rows_per_sec": (
                round(rows / result.seconds, 1)
                if result.seconds > 0 else float("inf")
            ),
        }
    return {
        "plants": plants,
        "instances": total,
        "recovered": recovered_total,
        "recall": recovered_total / total if total else 1.0,
    }
