"""Clustering coefficients, including the per-degree profiles of Table 1.

``cc`` (global/average clustering), ``accd`` (average clustering per
degree — BTER's target) and ``ccdd`` (clustering distribution per degree
— Darwini's target) all derive from per-node triangle counts, computed
here with a numpy merge-based triangle counter that avoids materialising
a dense adjacency matrix.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "local_clustering",
    "average_clustering",
    "clustering_per_degree",
    "clustering_distribution_per_degree",
    "triangle_count",
]


def _neighbor_sets(table):
    """Sorted neighbour arrays per node (deduplicated, no self loops)."""
    n = table.num_nodes
    indptr, neighbors, _ = table.adjacency_csr()
    sets = []
    for v in range(n):
        nbrs = neighbors[indptr[v]:indptr[v + 1]]
        nbrs = np.unique(nbrs)
        sets.append(nbrs[nbrs != v])
    return sets


def local_clustering(table):
    """Local clustering coefficient per node.

    ``c_v = 2 T_v / (d_v (d_v - 1))`` with ``T_v`` the number of edges
    among v's neighbours; nodes with degree < 2 get 0.

    Examples
    --------
    A triangle ``0-1-2`` with a pendant node ``3`` on ``0``:

    >>> from repro.tables import EdgeTable
    >>> tri = EdgeTable("e", [0, 1, 2, 0], [1, 2, 0, 3],
    ...                 num_tail_nodes=4)
    >>> [round(float(c), 4) for c in local_clustering(tri)]
    [0.3333, 1.0, 1.0, 0.0]
    """
    sets = _neighbor_sets(table)
    n = table.num_nodes
    coeffs = np.zeros(n)
    for v in range(n):
        nbrs = sets[v]
        d = nbrs.size
        if d < 2:
            continue
        links = 0
        nbr_set = sets[v]
        for u in nbrs:
            # Count neighbours of u that are also neighbours of v, with
            # u < w to count each link once.
            candidates = sets[u]
            links += np.intersect1d(
                candidates[candidates > u], nbr_set, assume_unique=True
            ).size
        coeffs[v] = 2.0 * links / (d * (d - 1))
    return coeffs


def average_clustering(table):
    """Mean local clustering coefficient over all nodes.

    >>> from repro.tables import EdgeTable
    >>> tri = EdgeTable("e", [0, 1, 2, 0], [1, 2, 0, 3],
    ...                 num_tail_nodes=4)
    >>> round(average_clustering(tri), 4)
    0.5833
    """
    coeffs = local_clustering(table)
    return float(coeffs.mean()) if coeffs.size else 0.0


def clustering_per_degree(table):
    """BTER's target: average clustering coefficient per degree.

    Returns
    -------
    (degrees, mean_cc):
        degrees with at least one node, and the mean local clustering of
        the nodes of that degree.

    Examples
    --------
    >>> from repro.tables import EdgeTable
    >>> tri = EdgeTable("e", [0, 1, 2, 0], [1, 2, 0, 3],
    ...                 num_tail_nodes=4)
    >>> degrees, mean_cc = clustering_per_degree(tri)
    >>> degrees.tolist(), [round(float(c), 4) for c in mean_cc]
    ([1, 2, 3], [0.0, 1.0, 0.3333])
    """
    coeffs = local_clustering(table)
    degrees = table.degrees()
    # Clustering uses the simple-graph degree (unique neighbours).
    max_d = int(degrees.max()) if degrees.size else 0
    sums = np.zeros(max_d + 1)
    counts = np.zeros(max_d + 1, dtype=np.int64)
    np.add.at(sums, degrees, coeffs)
    np.add.at(counts, degrees, 1)
    present = counts > 0
    dvals = np.arange(max_d + 1, dtype=np.int64)[present]
    return dvals, sums[present] / counts[present]


def clustering_distribution_per_degree(table, bins=10):
    """Darwini's target: the cc *distribution* within each degree.

    Returns a dict ``degree -> histogram`` where the histogram counts
    nodes of that degree whose local clustering falls into each of
    ``bins`` equal-width bins on [0, 1].

    Examples
    --------
    >>> from repro.tables import EdgeTable
    >>> tri = EdgeTable("e", [0, 1, 2, 0], [1, 2, 0, 3],
    ...                 num_tail_nodes=4)
    >>> hists = clustering_distribution_per_degree(tri, bins=2)
    >>> {d: h.tolist() for d, h in hists.items()}
    {1: [1, 0], 2: [0, 2], 3: [1, 0]}
    """
    coeffs = local_clustering(table)
    degrees = table.degrees()
    out = {}
    for d in np.unique(degrees):
        mask = degrees == d
        hist, _ = np.histogram(coeffs[mask], bins=bins, range=(0.0, 1.0))
        out[int(d)] = hist
    return out


def triangle_count(table):
    """Total number of triangles in the graph.

    >>> from repro.tables import EdgeTable
    >>> tri = EdgeTable("e", [0, 1, 2, 0], [1, 2, 0, 3],
    ...                 num_tail_nodes=4)
    >>> triangle_count(tri)
    1
    """
    coeffs = local_clustering(table)
    degrees = table.degrees().astype(np.float64)
    # Sum of per-node triangle counts = 3 * number of triangles.
    per_node = coeffs * degrees * (degrees - 1) / 2.0
    return int(round(per_node.sum() / 3.0))
