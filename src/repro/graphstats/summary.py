"""One-call structural summary of a graph.

Collects the metrics named in the requirements section (Section 2:
"number of connected components, clustering coefficient, degree
distribution, ... diameter, assortativity") into a dict for reports and
tests.
"""

from __future__ import annotations

import numpy as np

from .assortativity import degree_assortativity
from .clustering import average_clustering
from .components import (
    approximate_diameter,
    connected_components,
    largest_component_fraction,
)
from .degrees import powerlaw_fit_quality

__all__ = ["structural_summary"]


def structural_summary(table, clustering=True, diameter=True):
    """Compute the standard structural profile of an :class:`EdgeTable`.

    ``clustering`` and ``diameter`` can be disabled for very large
    graphs (both are the superlinear parts).

    Examples
    --------
    >>> from repro.tables import EdgeTable
    >>> tri = EdgeTable("e", [0, 1, 2, 0], [1, 2, 0, 3],
    ...                 num_tail_nodes=4)
    >>> profile = structural_summary(tri, clustering=True,
    ...                              diameter=True)
    >>> profile["num_nodes"], profile["num_edges"]
    (4, 4)
    >>> profile["num_components"], profile["approximate_diameter"]
    (1, 2)
    >>> round(profile["average_clustering"], 4)
    0.5833
    """
    degrees = table.degrees()
    _, num_components = connected_components(table)
    summary = {
        "num_nodes": table.num_nodes,
        "num_edges": table.num_edges,
        "mean_degree": float(degrees.mean()) if degrees.size else 0.0,
        "max_degree": int(degrees.max()) if degrees.size else 0,
        "num_components": num_components,
        "largest_component_fraction": largest_component_fraction(table),
        "degree_assortativity": degree_assortativity(table),
    }
    if table.num_edges:
        gamma, r2 = powerlaw_fit_quality(table)
        summary["powerlaw_gamma"] = gamma
        summary["powerlaw_r2"] = r2
    if clustering:
        summary["average_clustering"] = average_clustering(table)
    if diameter:
        summary["approximate_diameter"] = approximate_diameter(table)
    return summary
