"""Assortativity coefficients (degree and attribute)."""

from __future__ import annotations

import numpy as np

__all__ = ["degree_assortativity", "attribute_assortativity"]


def degree_assortativity(table):
    """Pearson correlation of endpoint degrees over edges.

    Positive values mean hubs attach to hubs (BTER's documented side
    effect); R-MAT graphs are typically disassortative.

    Examples
    --------
    A star is maximally disassortative — the hub (degree 3) only
    touches leaves (degree 1):

    >>> from repro.tables import EdgeTable
    >>> star = EdgeTable("e", [0, 0, 0], [1, 2, 3],
    ...                  num_tail_nodes=4)
    >>> round(degree_assortativity(star), 4)
    -1.0
    """
    if table.num_edges == 0:
        return float("nan")
    degrees = table.degrees().astype(np.float64)
    x = degrees[table.tails]
    y = degrees[table.heads]
    # Symmetrise: each edge contributes both orientations.
    xs = np.concatenate([x, y])
    ys = np.concatenate([y, x])
    xm = xs - xs.mean()
    ym = ys - ys.mean()
    denom = np.sqrt((xm ** 2).sum() * (ym ** 2).sum())
    if denom == 0:
        return float("nan")
    return float((xm * ym).sum() / denom)


def attribute_assortativity(table, labels):
    """Newman's attribute assortativity for categorical labels.

    ``r = (tr(e) - sum(e^2)) / (1 - sum(e^2))`` with ``e`` the normalised
    mixing matrix.  1 means perfect homophily, 0 random mixing — a
    compact scalar view of the property-structure correlation that the
    matching step is trying to instil.

    Examples
    --------
    Two labelled cliques joined by one edge mix mostly within label:

    >>> from repro.tables import EdgeTable
    >>> table = EdgeTable("e", [0, 2, 1], [1, 3, 2],
    ...                   num_tail_nodes=4)
    >>> round(attribute_assortativity(table, [0, 0, 1, 1]), 4)
    0.5385
    """
    labels = np.asarray(labels, dtype=np.int64)
    if table.num_edges == 0:
        return float("nan")
    k = int(labels.max()) + 1
    e = np.zeros((k, k))
    lt = labels[table.tails]
    lh = labels[table.heads]
    np.add.at(e, (lt, lh), 1.0)
    np.add.at(e, (lh, lt), 1.0)
    e /= e.sum()
    square_sum = float((e @ e).trace())
    trace = float(np.trace(e))
    if square_sum >= 1.0:
        return float("nan")
    return (trace - square_sum) / (1.0 - square_sum)
