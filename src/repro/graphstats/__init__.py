"""Structural graph metrics (the characterisation vocabulary of §2)."""

from .assortativity import attribute_assortativity, degree_assortativity
from .clustering import (
    average_clustering,
    clustering_distribution_per_degree,
    clustering_per_degree,
    local_clustering,
    triangle_count,
)
from .components import (
    approximate_diameter,
    bfs_distances,
    connected_components,
    largest_component_fraction,
)
from .degrees import degree_ccdf, degree_histogram, powerlaw_fit_quality
from .matching import (
    MatchResult,
    TemplateQuery,
    match_template,
    verify_plants,
)
from .summary import structural_summary

__all__ = [
    "MatchResult",
    "TemplateQuery",
    "approximate_diameter",
    "attribute_assortativity",
    "average_clustering",
    "bfs_distances",
    "clustering_distribution_per_degree",
    "clustering_per_degree",
    "connected_components",
    "degree_assortativity",
    "degree_ccdf",
    "degree_histogram",
    "largest_component_fraction",
    "local_clustering",
    "match_template",
    "powerlaw_fit_quality",
    "structural_summary",
    "triangle_count",
    "verify_plants",
]
