"""Connected components and distance-based metrics."""

from __future__ import annotations

import numpy as np

__all__ = [
    "connected_components",
    "largest_component_fraction",
    "approximate_diameter",
    "bfs_distances",
]


def connected_components(table):
    """Label connected components with union-find (path compression).

    Returns
    -------
    (labels, count):
        dense component label per node and the number of components.

    Examples
    --------
    An edge ``0-1`` plus an isolated node ``2``:

    >>> from repro.tables import EdgeTable
    >>> table = EdgeTable("e", [0], [1], num_tail_nodes=3)
    >>> labels, count = connected_components(table)
    >>> labels.tolist(), count
    ([0, 0, 1], 2)
    """
    n = table.num_nodes
    parent = np.arange(n, dtype=np.int64)

    def find(x):
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for u, v in zip(table.tails, table.heads):
        ru, rv = find(int(u)), find(int(v))
        if ru != rv:
            parent[ru] = rv
    roots = np.array([find(i) for i in range(n)], dtype=np.int64)
    _, labels = np.unique(roots, return_inverse=True)
    count = int(labels.max()) + 1 if n else 0
    return labels.astype(np.int64), count


def largest_component_fraction(table):
    """Fraction of nodes in the largest connected component.

    >>> from repro.tables import EdgeTable
    >>> table = EdgeTable("e", [0], [1], num_tail_nodes=4)
    >>> largest_component_fraction(table)
    0.5
    """
    labels, count = connected_components(table)
    if count == 0:
        return 0.0
    sizes = np.bincount(labels)
    return float(sizes.max() / labels.size)


def bfs_distances(table, source):
    """BFS hop distances from ``source`` (-1 where unreachable).

    A path ``0-1-2`` plus an unreachable node ``3``:

    >>> from repro.tables import EdgeTable
    >>> path = EdgeTable("e", [0, 1], [1, 2], num_tail_nodes=4)
    >>> bfs_distances(path, 0).tolist()
    [0, 1, 2, -1]
    """
    n = table.num_nodes
    indptr, neighbors, _ = table.adjacency_csr()
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        candidates = []
        for v in frontier:
            candidates.append(neighbors[indptr[v]:indptr[v + 1]])
        if not candidates:
            break
        nxt = np.unique(np.concatenate(candidates))
        nxt = nxt[dist[nxt] < 0]
        if nxt.size == 0:
            break
        dist[nxt] = level
        frontier = nxt
    return dist


def approximate_diameter(table, samples=8, stream=None):
    """Lower-bound diameter estimate via double-sweep BFS.

    Runs BFS from ``samples`` pseudo-random sources, then from the
    farthest node found by each sweep, returning the maximum eccentricity
    observed — the standard cheap diameter estimate for large graphs.

    Examples
    --------
    >>> from repro.tables import EdgeTable
    >>> path = EdgeTable("e", [0, 1, 2], [1, 2, 3],
    ...                  num_tail_nodes=4)
    >>> approximate_diameter(path)
    3
    """
    n = table.num_nodes
    if n == 0 or table.num_edges == 0:
        return 0
    if stream is None:
        from ..prng import RandomStream

        stream = RandomStream(0, "diameter")
    best = 0
    sources = stream.randint(np.arange(samples, dtype=np.int64), 0, n)
    for s in np.unique(sources):
        d1 = bfs_distances(table, int(s))
        far = int(np.argmax(d1))
        best = max(best, int(d1.max()))
        d2 = bfs_distances(table, far)
        best = max(best, int(d2.max()))
    return best
