"""Degree-based structural metrics (requirements Section 2).

Examples below share a 4-node graph: a triangle ``0-1-2`` with a
pendant node ``3`` attached to ``0``.

>>> from repro.tables import EdgeTable
>>> tri = EdgeTable("e", [0, 1, 2, 0], [1, 2, 0, 3],
...                 num_tail_nodes=4)
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "degree_histogram",
    "degree_ccdf",
    "powerlaw_fit_quality",
]


def degree_histogram(table):
    """Counts of nodes per degree value ``0..max_degree``.

    >>> from repro.tables import EdgeTable
    >>> tri = EdgeTable("e", [0, 1, 2, 0], [1, 2, 0, 3],
    ...                 num_tail_nodes=4)
    >>> degree_histogram(tri).tolist()   # no deg-0, one deg-1, ...
    [0, 1, 2, 1]
    """
    return np.bincount(table.degrees()).astype(np.int64)


def degree_ccdf(table):
    """Complementary CDF of the degree distribution.

    Returns
    -------
    (degrees, ccdf):
        ``ccdf[i]`` is the fraction of nodes with degree >= ``degrees[i]``.

    Examples
    --------
    >>> from repro.tables import EdgeTable
    >>> tri = EdgeTable("e", [0, 1, 2, 0], [1, 2, 0, 3],
    ...                 num_tail_nodes=4)
    >>> degrees, ccdf = degree_ccdf(tri)
    >>> degrees.tolist(), ccdf.tolist()
    ([1, 2, 3], [1.0, 0.75, 0.25])
    """
    hist = degree_histogram(table)
    total = hist.sum()
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0)
    tail = np.cumsum(hist[::-1])[::-1] / total
    degrees = np.arange(hist.size, dtype=np.int64)
    keep = hist > 0
    return degrees[keep], tail[keep]


def powerlaw_fit_quality(table, xmin=2):
    """Fit a power law to the degree tail and report (gamma, r_squared).

    ``r_squared`` is computed on the log-log CCDF regression — a rough
    but standard check that a generator's output "follows a power law"
    (the paper's ``pl`` capability flag).  Fewer than three distinct
    tail degrees yield ``nan`` for ``r_squared``.

    Examples
    --------
    >>> from repro.structure import RMat
    >>> graph = RMat(seed=1, edge_factor=8).run(256)
    >>> gamma, r2 = powerlaw_fit_quality(graph)
    >>> 1.0 < gamma < 6.0 and 0.5 < r2 <= 1.0
    True
    """
    from ..stats import fit_power_law_exponent

    degrees = table.degrees()
    gamma = fit_power_law_exponent(degrees, xmin=xmin)
    dvals, ccdf = degree_ccdf(table)
    mask = dvals >= xmin
    if mask.sum() < 3:
        return gamma, float("nan")
    x = np.log(dvals[mask].astype(np.float64))
    y = np.log(ccdf[mask])
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    ss_res = float(((y - predicted) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else float("nan")
    return gamma, r2
