"""Structure generators (the SG plug-in family of Section 4.1).

Every generator referenced by the paper's Table 1 is implemented here
from scratch on numpy edge arrays: RMAT, LFR, BTER, Darwini, plus the
standard baselines (Erdős–Rényi, configuration model, Barabási–Albert,
Watts–Strogatz, SBM) and the strict-cardinality operators of Section 5.
"""

from .attributed import AttributedResult, AttributedSbmGenerator
from .barabasi_albert import BarabasiAlbert
from .base import StructureGenerator
from .bipartite import BipartiteConfiguration
from .bter import BTER, chung_lu_pairs
from .cardinality import OneToManyGenerator, OneToOneGenerator
from .cascade import CascadeForest, CascadeResult
from .configuration import ConfigurationModel, pair_stubs, pair_stubs_with_repair
from .darwini import Darwini
from .degree_sequences import powerlaw_degree_sequence, solve_powerlaw_xmin
from .empirical import EmpiricalDegreeGenerator
from .erdos_renyi import ErdosRenyi, ErdosRenyiM
from .forest_fire import ForestFire
from .hyperbolic import HyperbolicGenerator
from .kronecker import KroneckerGenerator
from .lfr import LFR, LfrResult
from .registry import (
    EXTERNAL_SYSTEMS,
    Capability,
    GeneratorInfo,
    available_generators,
    capability_matrix,
    create_generator,
    register_generator,
)
from .rmat import RMat
from .sbm import StochasticBlockModel
from .watts_strogatz import WattsStrogatz

__all__ = [
    "AttributedResult",
    "AttributedSbmGenerator",
    "BTER",
    "BarabasiAlbert",
    "BipartiteConfiguration",
    "Capability",
    "CascadeForest",
    "CascadeResult",
    "ConfigurationModel",
    "Darwini",
    "EmpiricalDegreeGenerator",
    "EXTERNAL_SYSTEMS",
    "ErdosRenyi",
    "ErdosRenyiM",
    "ForestFire",
    "HyperbolicGenerator",
    "GeneratorInfo",
    "KroneckerGenerator",
    "LFR",
    "LfrResult",
    "OneToManyGenerator",
    "OneToOneGenerator",
    "RMat",
    "StochasticBlockModel",
    "StructureGenerator",
    "WattsStrogatz",
    "available_generators",
    "capability_matrix",
    "chung_lu_pairs",
    "create_generator",
    "pair_stubs",
    "pair_stubs_with_repair",
    "powerlaw_degree_sequence",
    "register_generator",
    "solve_powerlaw_xmin",
]
