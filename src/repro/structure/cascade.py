"""Tree cascades: message-reply trees (paper Section 5, future work).

Social networks contain message cascades — reply trees rooted at an
original post.  The paper proposes modelling these with a vertex-centric
approach where information propagates through the cascade.  This SG
grows forests of preferential-attachment trees: each new node attaches
to an existing node of its cascade, favouring recent/shallow nodes via a
configurable decay, producing the broom-shaped cascades observed in
practice.

The per-node metadata needed by propagation-style property generation
(root id, parent id, depth) is exposed through :meth:`run_with_metadata`.
"""

from __future__ import annotations

import numpy as np

from .base import StructureGenerator
from ..tables import EdgeTable

__all__ = ["CascadeForest", "CascadeResult"]


class CascadeResult:
    """Cascade structure plus per-node propagation metadata."""

    __slots__ = ("table", "roots", "parents", "depths")

    def __init__(self, table, roots, parents, depths):
        self.table = table
        self.roots = roots
        self.parents = parents
        self.depths = depths

    @property
    def num_cascades(self):
        return int(np.unique(self.roots).size)


class CascadeForest(StructureGenerator):
    """SG producing a forest of reply trees.

    Parameters (via ``initialize``)
    -------------------------------
    num_cascades:
        number of trees; node 0..num_cascades-1 are the roots.
    depth_bias:
        >= 0; larger values favour attaching near the root (flat,
        star-like cascades), 0 gives uniform random attachment (deeper
        chains).  Default 1.0.
    """

    name = "cascade_forest"

    def parameter_names(self):
        return {"num_cascades", "depth_bias"}

    def _validate_params(self):
        c = self._params.get("num_cascades")
        if c is not None and c < 1:
            raise ValueError("num_cascades must be >= 1")
        bias = self._params.get("depth_bias", 1.0)
        if bias < 0:
            raise ValueError("depth_bias must be nonnegative")

    def run_with_metadata(self, n):
        """Generate and return the :class:`CascadeResult`."""
        from ..prng import RandomStream

        n = int(n)
        stream = RandomStream(self.seed, f"sg.{self.name}")
        num_cascades = int(self._params.get("num_cascades", 1))
        if n == 0:
            empty = EdgeTable(self.name, [], [], num_tail_nodes=0)
            zero = np.empty(0, dtype=np.int64)
            return CascadeResult(empty, zero, zero.copy(), zero.copy())
        num_cascades = min(num_cascades, n)
        bias = float(self._params.get("depth_bias", 1.0))

        roots = np.empty(n, dtype=np.int64)
        parents = np.full(n, -1, dtype=np.int64)
        depths = np.zeros(n, dtype=np.int64)
        roots[:num_cascades] = np.arange(num_cascades)

        # Assign each non-root node to a cascade round-robin after a
        # random offset, so cascades have near-equal sizes but different
        # membership across seeds.
        cascade_of = np.empty(n, dtype=np.int64)
        cascade_of[:num_cascades] = np.arange(num_cascades)
        if n > num_cascades:
            offset_draw = stream.substream("offsets")
            idx = np.arange(n - num_cascades, dtype=np.int64)
            cascade_of[num_cascades:] = (
                offset_draw.randint(idx, 0, num_cascades)
            )

        members = [[int(c)] for c in range(num_cascades)]
        tails = np.empty(max(n - num_cascades, 0), dtype=np.int64)
        heads = np.empty_like(tails)
        attach = stream.substream("attach")
        edge_at = 0
        for node in range(num_cascades, n):
            cascade = int(cascade_of[node])
            pool = members[cascade]
            if bias > 0.0:
                weights = np.array(
                    [1.0 / (1.0 + bias * depths[p]) for p in pool]
                )
                pick = int(attach.indexed_substream(node).choice(
                    np.int64(0), weights
                ))
            else:
                pick = int(
                    attach.indexed_substream(node).randint(
                        np.int64(0), 0, len(pool)
                    )
                )
            parent = pool[pick]
            parents[node] = parent
            roots[node] = roots[parent]
            depths[node] = depths[parent] + 1
            tails[edge_at] = parent
            heads[edge_at] = node
            edge_at += 1
            pool.append(node)

        table = EdgeTable(
            self.name,
            tails,
            heads,
            num_tail_nodes=n,
            num_head_nodes=n,
            directed=True,
        )
        return CascadeResult(table, roots, parents, depths)

    def _generate(self, n, stream):
        return self.run_with_metadata(n).table

    def expected_edges_for_nodes(self, n):
        num_cascades = int(self._params.get("num_cascades", 1))
        return max(n - min(num_cascades, n), 0)

    def propagate(self, result, values, update):
        """Propagate information down the cascades (vertex-centric).

        Applies ``update(parent_value, node_id, depth) -> value`` level
        by level, exactly the iterative scheme sketched in the paper for
        tree-structured properties (e.g. reply timestamps that must
        exceed the parent's).

        Parameters
        ----------
        result:
            a :class:`CascadeResult` from :meth:`run_with_metadata`.
        values:
            initial per-node values; roots keep theirs.
        update:
            callable combining the parent's (already final) value.
        """
        values = list(values)
        order = np.argsort(result.depths, kind="stable")
        for node in order:
            parent = result.parents[node]
            if parent >= 0:
                values[node] = update(
                    values[parent], int(node), int(result.depths[node])
                )
        return values
