"""LFR benchmark graphs (Lancichinetti, Fortunato, Radicchi 2008).

LFR produces graphs with power-law degree *and* community-size
distributions and a tunable mixing factor ``mu`` — the fraction of each
node's edges that leave its community.  The paper's evaluation generates
LFR graphs with average degree 20, max degree 50, community sizes in
[10, 50] and ``mu = 0.1`` (the parameters of Lancichinetti & Fortunato's
comparative analysis), i.e. graphs with pronounced, planted community
structure — the "easy" case for SBM-Part.

Implementation notes
--------------------
This is a from-scratch numpy implementation of the published pipeline:

1. sample degrees ``d_i`` from a power law (exponent ``tau1``, default 2)
   calibrated to the average degree;
2. sample community sizes from a power law (exponent ``tau2``, default 1)
   on ``[min_community, max_community]`` summing to ``n``;
3. split each degree into an internal part ``(1 - mu) d_i`` and an
   external part ``mu d_i``;
4. assign nodes to communities large enough to host their internal
   degree (capacity-weighted random assignment over the eligible
   communities, processed in decreasing internal-degree order so the
   eligible set only grows);
5. wire internal stubs with a per-community configuration model and
   external stubs with a global configuration model (erased variant:
   loops and duplicate edges dropped).

The planted community labels are exposed via the ``communities``
attribute of the returned table's companion (see :meth:`run_with_labels`),
which the evaluation protocol and tests use as ground truth.
"""

from __future__ import annotations

import numpy as np

from .base import StructureGenerator
from .configuration import pair_stubs_with_repair
from .degree_sequences import powerlaw_degree_sequence
from ..stats import PowerLaw
from ..tables import EdgeTable

__all__ = ["LFR", "LfrResult"]


class LfrResult:
    """Output of :meth:`LFR.run_with_labels`.

    Attributes
    ----------
    table:
        the generated :class:`EdgeTable`.
    communities:
        ``(n,)`` int64 planted community id per node.
    """

    __slots__ = ("table", "communities")

    def __init__(self, table, communities):
        self.table = table
        self.communities = communities

    @property
    def num_communities(self):
        return int(self.communities.max()) + 1 if self.communities.size else 0


class LFR(StructureGenerator):
    """SG implementing the LFR community benchmark.

    Parameters (via ``initialize``)
    -------------------------------
    avg_degree:
        target mean degree (paper: 20).
    max_degree:
        maximum degree (paper: 50).
    min_community, max_community:
        community size bounds (paper: 10 and 50).
    mu:
        mixing factor in [0, 1) (paper: 0.1).
    tau1:
        degree exponent (LFR default 2).
    tau2:
        community-size exponent (LFR default 1).
    """

    name = "lfr"

    def parameter_names(self):
        return {
            "avg_degree",
            "max_degree",
            "min_community",
            "max_community",
            "mu",
            "tau1",
            "tau2",
        }

    def _validate_params(self):
        p = self._params
        mu = p.get("mu", 0.1)
        if not 0.0 <= mu < 1.0:
            raise ValueError("mu must lie in [0, 1)")
        cmin = p.get("min_community", 10)
        cmax = p.get("max_community", 50)
        if cmin < 2 or cmax < cmin:
            raise ValueError("need 2 <= min_community <= max_community")
        if p.get("avg_degree", 20) <= 0:
            raise ValueError("avg_degree must be positive")
        if p.get("max_degree", 50) < 1:
            raise ValueError("max_degree must be >= 1")

    # -- pipeline pieces -----------------------------------------------------

    def _community_sizes(self, n, stream):
        """Power-law community sizes summing exactly to ``n``."""
        cmin = self._params.get("min_community", 10)
        cmax = min(self._params.get("max_community", 50), n)
        if cmin > n:
            # Degenerate tiny graph: one community holds everyone.
            return np.array([n], dtype=np.int64)
        tau2 = self._params.get("tau2", 1.0)
        dist = PowerLaw(tau2, cmin, cmax)
        sizes = []
        total = 0
        draw = 0
        while total < n:
            size = int(dist.sample_values(stream, np.int64(draw)))
            sizes.append(size)
            total += size
            draw += 1
        overshoot = total - n
        # Shave the overshoot off the last community; merge it into the
        # previous one if that pushes it below the minimum size.
        sizes[-1] -= overshoot
        if sizes[-1] < cmin and len(sizes) > 1:
            sizes[-2] += sizes[-1]
            sizes.pop()
        return np.array(sizes, dtype=np.int64)

    def _assign_communities(self, internal_degrees, sizes, stream):
        """Capacity-weighted assignment of nodes to eligible communities.

        A node with internal degree ``d`` can only live in a community of
        size ``> d``.  Nodes are processed by decreasing internal degree;
        communities sorted by decreasing size, so the eligible set is a
        growing prefix.  Sampling within the prefix is proportional to
        remaining capacity via a Fenwick tree (O(log C) per draw).
        """
        n = internal_degrees.size
        order_c = np.argsort(-sizes, kind="stable")
        sorted_sizes = sizes[order_c]
        capacities = sorted_sizes.astype(np.int64).copy()
        num_c = sizes.size

        fenwick = np.zeros(num_c + 1, dtype=np.int64)

        def fen_add(pos, delta):
            i = pos + 1
            while i <= num_c:
                fenwick[i] += delta
                i += i & (-i)

        def fen_total():
            i = num_c
            total = 0
            while i > 0:
                total += fenwick[i]
                i -= i & (-i)
            return total

        def fen_find(target):
            # Smallest prefix position with cumulative sum > target.
            pos = 0
            bit = 1 << (num_c.bit_length())
            remaining = target
            while bit:
                nxt = pos + bit
                if nxt <= num_c and fenwick[nxt] <= remaining:
                    remaining -= fenwick[nxt]
                    pos = nxt
                bit >>= 1
            return pos  # 0-based community index in sorted order

        order_n = np.argsort(-internal_degrees, kind="stable")
        assignment = np.empty(n, dtype=np.int64)
        opened = 0
        u = stream.uniform(np.arange(n, dtype=np.int64))
        for rank, node in enumerate(order_n):
            d_int = int(internal_degrees[node])
            while opened < num_c and sorted_sizes[opened] > d_int:
                fen_add(opened, int(capacities[opened]))
                opened += 1
            total = fen_total()
            if total <= 0:
                # No eligible capacity left: relax by opening the largest
                # still-closed community (its size <= d_int, so clamp the
                # node's internal degree implicitly — the wiring step
                # clips to community size anyway).
                if opened < num_c:
                    fen_add(opened, int(capacities[opened]))
                    opened += 1
                    total = fen_total()
                else:
                    raise RuntimeError(
                        "LFR: community capacity exhausted; "
                        "inconsistent size/degree configuration"
                    )
            target = int(u[rank] * total)
            pos = fen_find(target)
            assignment[node] = order_c[pos]
            capacities[pos] -= 1
            fen_add(pos, -1)
        return assignment

    def _wire(self, n, degrees, assignment, sizes, mu, stream):
        """Wire internal stubs per community and external stubs globally."""
        internal = np.rint((1.0 - mu) * degrees).astype(np.int64)
        # Internal degree cannot exceed community size - 1.
        comm_size_of = sizes[assignment]
        internal = np.minimum(internal, comm_size_of - 1)
        internal = np.maximum(internal, 0)
        external = degrees - internal

        pair_chunks = []
        # Per-community configuration model on internal stubs.
        comm_order = np.argsort(assignment, kind="stable")
        boundaries = np.searchsorted(
            assignment[comm_order], np.arange(sizes.size + 1)
        )
        for c in range(sizes.size):
            members = comm_order[boundaries[c]:boundaries[c + 1]]
            if members.size < 2:
                continue
            local_deg = internal[members].copy()
            if int(local_deg.sum()) % 2 == 1:
                # Drop one stub from the largest-degree member.
                top = int(np.argmax(local_deg))
                if local_deg[top] > 0:
                    local_deg[top] -= 1
            local_pairs = pair_stubs_with_repair(
                local_deg, stream.substream(f"intra{c}")
            )
            if local_pairs.size:
                pair_chunks.append(members[local_pairs])

        # Global configuration model on external stubs.
        ext = external.copy()
        if int(ext.sum()) % 2 == 1:
            top = int(np.argmax(ext))
            ext[top] -= 1
        ext_pairs = pair_stubs_with_repair(ext, stream.substream("inter"))
        if ext_pairs.size:
            pair_chunks.append(ext_pairs)

        if pair_chunks:
            pairs = np.concatenate(pair_chunks, axis=0)
        else:
            pairs = np.empty((0, 2), dtype=np.int64)
        table = EdgeTable(
            self.name,
            pairs[:, 0],
            pairs[:, 1],
            num_tail_nodes=n,
            num_head_nodes=n,
        )
        return table.deduplicated()

    # -- SG contract -----------------------------------------------------------

    def run_with_labels(self, n):
        """Generate and also return the planted community labels."""
        n = int(n)
        if n == 0:
            empty = EdgeTable(self.name, [], [], num_tail_nodes=0)
            return LfrResult(empty, np.empty(0, dtype=np.int64))
        from ..prng import RandomStream

        stream = RandomStream(self.seed, f"sg.{self.name}")
        mu = self._params.get("mu", 0.1)
        degrees = powerlaw_degree_sequence(
            n,
            self._params.get("tau1", 2.0),
            self._params.get("avg_degree", 20),
            self._params.get("max_degree", 50),
            stream.substream("degrees"),
        )
        sizes = self._community_sizes(n, stream.substream("sizes"))
        internal = np.rint((1.0 - mu) * degrees).astype(np.int64)
        assignment = self._assign_communities(
            internal, sizes, stream.substream("assign")
        )
        table = self._wire(n, degrees, assignment, sizes, mu, stream)
        return LfrResult(table, assignment)

    def _generate(self, n, stream):
        return self.run_with_labels(n).table

    def expected_edges_for_nodes(self, n):
        return int(n * self._params.get("avg_degree", 20) / 2)
