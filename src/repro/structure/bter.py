"""BTER: Block Two-level Erdős–Rényi (Kolda, Pinar, Plantenga, Seshadhri).

BTER reproduces a target degree distribution *and* a target clustering
coefficient per degree (the ``accd`` column of the paper's Table 1).  It
works in two phases:

Phase 1 (affinity blocks)
    Nodes sorted by degree are grouped into blocks of ``d + 1`` nodes,
    where ``d`` is the smallest degree in the block.  Each block is an
    Erdős–Rényi graph with connection probability
    ``rho = cbrt(ccd(d))`` — within a block, the probability that two
    neighbours of a node are themselves connected is ``rho``... giving
    local clustering ``≈ rho^3 = ccd(d)`` for block-internal wedges.

Phase 2 (excess degree)
    Whatever degree phase 1 does not supply is wired with a Chung–Lu
    model on the *excess* degrees ``e_i = d_i - rho (block_size - 1)``.

Degree-one nodes skip phase 1 (they cannot close triangles), as in the
reference implementation.
"""

from __future__ import annotations

import numpy as np

from .base import StructureGenerator, edge_table_from_pairs
from .degree_sequences import powerlaw_degree_sequence
from ..tables import EdgeTable

__all__ = ["BTER", "chung_lu_pairs"]


def chung_lu_pairs(weights, stream, rounds_cap=8):
    """Chung–Lu edges: endpoints drawn proportionally to ``weights``.

    The number of edges is ``sum(weights) / 2``; both endpoints of each
    edge are drawn independently from the weight distribution, then loops
    and duplicates are erased.  Deterministic given ``stream``.
    """
    w = np.asarray(weights, dtype=np.float64)
    if (w < 0).any():
        raise ValueError("weights must be nonnegative")
    total = w.sum()
    m = int(round(total / 2.0))
    if m == 0 or total <= 0:
        return np.empty((0, 2), dtype=np.int64)
    cdf = np.cumsum(w) / total
    idx = np.arange(m, dtype=np.int64)
    tails = np.searchsorted(
        cdf, stream.substream("tails").uniform(idx), side="right"
    ).astype(np.int64)
    heads = np.searchsorted(
        cdf, stream.substream("heads").uniform(idx), side="right"
    ).astype(np.int64)
    pairs = np.stack([tails, heads], axis=1)
    lo = pairs.min(axis=1)
    hi = pairs.max(axis=1)
    keep = lo != hi
    lo, hi = lo[keep], hi[keep]
    keys = lo * np.int64(w.size) + hi
    _, first = np.unique(keys, return_index=True)
    first.sort()
    return np.stack([lo[first], hi[first]], axis=1)


def _resolve_ccd(ccd, max_degree):
    """Normalise the clustering-per-degree input to a lookup array.

    Accepts a scalar (constant target), an array indexed by degree, or a
    callable ``degree -> cc``.
    """
    degrees = np.arange(max_degree + 1)
    if callable(ccd):
        values = np.array([float(ccd(int(d))) for d in degrees])
    elif np.isscalar(ccd):
        values = np.full(max_degree + 1, float(ccd))
    else:
        arr = np.asarray(ccd, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError("ccd array must be 1-D (indexed by degree)")
        values = np.zeros(max_degree + 1)
        upto = min(arr.size, max_degree + 1)
        values[:upto] = arr[:upto]
        if arr.size < max_degree + 1 and arr.size > 0:
            values[arr.size:] = arr[-1]
    if (values < 0).any() or (values > 1).any():
        raise ValueError("clustering coefficients must lie in [0, 1]")
    return values


class BTER(StructureGenerator):
    """SG implementing the BTER model.

    Parameters (via ``initialize``)
    -------------------------------
    degrees:
        explicit degree sequence, or
    avg_degree, max_degree, gamma:
        power-law sampling parameters for the sequence (defaults
        20 / 50 / 2, matching the evaluation's LFR-like regime).
    ccd:
        clustering coefficient per degree: scalar, per-degree array, or
        callable (default ``0.95 * exp(-(d - 2) / 15)``, a decaying
        profile similar to real social graphs).
    """

    name = "bter"

    @staticmethod
    def default_ccd(degree):
        """Default decaying clustering-per-degree profile."""
        if degree < 2:
            return 0.0
        return float(0.95 * np.exp(-(degree - 2) / 15.0))

    def parameter_names(self):
        return {"degrees", "avg_degree", "max_degree", "gamma", "ccd"}

    def _degree_sequence(self, n, stream):
        if "degrees" in self._params:
            degrees = np.asarray(self._params["degrees"], dtype=np.int64)
            if degrees.size != n:
                raise ValueError(
                    f"degree sequence length {degrees.size} != n {n}"
                )
            return degrees
        return powerlaw_degree_sequence(
            n,
            self._params.get("gamma", 2.0),
            self._params.get("avg_degree", 20),
            self._params.get("max_degree", 50),
            stream.substream("degrees"),
        )

    def _generate(self, n, stream):
        if n == 0:
            return EdgeTable(self.name, [], [], num_tail_nodes=0)
        degrees = self._degree_sequence(n, stream)
        max_degree = int(degrees.max()) if degrees.size else 0
        ccd = _resolve_ccd(
            self._params.get("ccd", self.default_ccd), max_degree
        )

        order = np.argsort(degrees, kind="stable")
        # Phase 1 covers nodes with degree >= 2.
        eligible = order[degrees[order] >= 2]
        excess = degrees.astype(np.float64).copy()

        chunks = []
        pos = 0
        block_id = 0
        while pos < eligible.size:
            lead_degree = int(degrees[eligible[pos]])
            size = min(lead_degree + 1, eligible.size - pos)
            members = eligible[pos:pos + size]
            pos += size
            if size < 2:
                continue
            rho = float(np.cbrt(ccd[lead_degree]))
            if rho > 0.0:
                block_stream = stream.substream(f"block{block_id}")
                iu, ju = np.triu_indices(size, k=1)
                u = block_stream.uniform(np.arange(iu.size, dtype=np.int64))
                take = u < rho
                if take.any():
                    chunks.append(
                        np.stack(
                            [members[iu[take]], members[ju[take]]], axis=1
                        )
                    )
                excess[members] -= rho * (size - 1)
            block_id += 1

        np.maximum(excess, 0.0, out=excess)
        phase2 = chung_lu_pairs(excess, stream.substream("phase2"))
        if phase2.size:
            chunks.append(phase2)
        if chunks:
            pairs = np.concatenate(chunks, axis=0)
        else:
            pairs = np.empty((0, 2), dtype=np.int64)
        table = edge_table_from_pairs(self.name, pairs, n)
        return table.deduplicated()

    def expected_edges_for_nodes(self, n):
        if "degrees" in self._params:
            return int(np.asarray(self._params["degrees"]).sum() // 2)
        return int(n * self._params.get("avg_degree", 20) / 2)
