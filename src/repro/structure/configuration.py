"""Configuration model: wire a prescribed degree sequence.

The configuration model pairs "half-edges" (stubs) uniformly at random;
it is the workhorse inside LFR (intra- and inter-community wiring) and a
useful SG in its own right for reproducing an empirical degree
distribution, one of the requirements of Section 2.
"""

from __future__ import annotations

import numpy as np

from .base import StructureGenerator, edge_table_from_pairs, ensure_even_sum
from ..stats import Empirical

__all__ = ["ConfigurationModel", "pair_stubs"]


def pair_stubs(degrees, stream, simplify=True):
    """Pair half-edges of ``degrees`` into an ``(m, 2)`` edge array.

    Parameters
    ----------
    degrees:
        nonnegative int degree per node; the sum must be even.
    stream:
        PRNG stream used to shuffle the stub array.
    simplify:
        when True, self loops and parallel edges are dropped (the
        standard "erased configuration model"), so realised degrees can
        be slightly below the prescription for heavy-tailed sequences.

    Returns
    -------
    (m, 2) int64 array of endpoints.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    if degrees.size and degrees.min() < 0:
        raise ValueError("degrees must be nonnegative")
    total = int(degrees.sum())
    if total % 2 == 1:
        raise ValueError("degree sum must be even")
    if total == 0:
        return np.empty((0, 2), dtype=np.int64)
    stubs = np.repeat(np.arange(degrees.size, dtype=np.int64), degrees)
    perm = stream.permutation(total)
    stubs = stubs[perm]
    pairs = stubs.reshape(-1, 2)
    if simplify:
        lo = np.minimum(pairs[:, 0], pairs[:, 1])
        hi = np.maximum(pairs[:, 0], pairs[:, 1])
        keep = lo != hi
        lo, hi = lo[keep], hi[keep]
        keys = lo * np.int64(degrees.size) + hi
        _, first = np.unique(keys, return_index=True)
        first.sort()
        pairs = np.stack([lo[first], hi[first]], axis=1)
    return pairs


def pair_stubs_with_repair(degrees, stream, rounds=3):
    """Erased configuration model with deficit-repair rounds.

    Plain erased pairing loses substantial degree mass on dense inputs
    (duplicates collapse).  After each round the per-node deficit
    (prescribed minus realised degree) is re-paired; accumulated edges
    are globally deduplicated.  Converges quickly: dense communities in
    LFR recover most of their prescribed degree in 2-3 rounds.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    n = degrees.size
    realised = np.zeros(n, dtype=np.int64)
    seen = None
    chunks = []
    deficit = degrees.copy()
    for round_id in range(rounds):
        if int(deficit.sum()) < 2:
            break
        if int(deficit.sum()) % 2 == 1:
            top = int(np.argmax(deficit))
            deficit[top] -= 1
        pairs = pair_stubs(
            deficit, stream.substream(f"repair{round_id}"), simplify=True
        )
        if pairs.size == 0:
            break
        keys = pairs[:, 0] * np.int64(n) + pairs[:, 1]
        if seen is None:
            seen = keys
            fresh = pairs
        else:
            new_mask = ~np.isin(keys, seen)
            fresh = pairs[new_mask]
            if fresh.size == 0:
                break
            seen = np.concatenate([seen, keys[new_mask]])
        chunks.append(fresh)
        np.add.at(realised, fresh[:, 0], 1)
        np.add.at(realised, fresh[:, 1], 1)
        deficit = np.maximum(degrees - realised, 0)
    if chunks:
        return np.concatenate(chunks, axis=0)
    return np.empty((0, 2), dtype=np.int64)


class ConfigurationModel(StructureGenerator):
    """SG reproducing a target degree distribution.

    Parameters (via ``initialize``)
    -------------------------------
    degrees:
        explicit per-node degree sequence (overrides ``distribution``), or
    distribution:
        a :class:`~repro.stats.Distribution` over degree values sampled
        i.i.d. per node.
    simplify:
        drop loops/multi-edges (default True).
    """

    name = "configuration"

    def parameter_names(self):
        return {"degrees", "distribution", "simplify"}

    def _validate_params(self):
        if "degrees" not in self._params and "distribution" not in self._params:
            return  # allowed to configure later
        if "degrees" in self._params:
            d = np.asarray(self._params["degrees"], dtype=np.int64)
            if d.ndim != 1:
                raise ValueError("degrees must be 1-D")
            if d.size and d.min() < 0:
                raise ValueError("degrees must be nonnegative")

    def _degree_sequence(self, n, stream):
        if "degrees" in self._params:
            degrees = np.asarray(self._params["degrees"], dtype=np.int64)
            if degrees.size != n:
                raise ValueError(
                    f"degree sequence length {degrees.size} != n {n}"
                )
            return ensure_even_sum(degrees, stream)
        dist = self._params.get("distribution")
        if dist is None:
            raise ValueError(
                "ConfigurationModel needs 'degrees' or 'distribution'"
            )
        degrees = dist.sample(stream.substream("degrees"), np.arange(n))
        return ensure_even_sum(degrees, stream)

    def _generate(self, n, stream):
        degrees = self._degree_sequence(n, stream)
        pairs = pair_stubs(
            degrees,
            stream.substream("pairing"),
            simplify=self._params.get("simplify", True),
        )
        return edge_table_from_pairs(self.name, pairs, n)

    def expected_edges_for_nodes(self, n):
        if "degrees" in self._params:
            return int(np.asarray(self._params["degrees"]).sum() // 2)
        dist = self._params.get("distribution")
        if dist is None:
            raise ValueError("generator not configured")
        if isinstance(dist, Empirical) or hasattr(dist, "mean"):
            return int(n * dist.mean() / 2)
        raise NotImplementedError
