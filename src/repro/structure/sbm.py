"""Stochastic Block Model structure generator.

The SBM is the theoretical model SBM-Part targets (Section 4.2): nodes
belong to groups, and an edge between two nodes exists with a probability
``delta_ij`` depending only on their groups.  As an SG, it produces
graphs with *known* group structure and *known* joint distribution —
ideal ground truth for validating the matching algorithm (if SBM-Part is
handed a graph actually drawn from the target SBM, it should recover a
near-perfect joint).
"""

from __future__ import annotations

import bisect

import numpy as np

from .base import EdgeChunkStream, StructureGenerator
from ..io.spool import spill_array
from ..tables import EdgeTable

__all__ = ["StochasticBlockModel"]


class _BlockEmitter:
    """Picklable emitter over per-block (possibly spilled) edge codes.

    Holds ``(edge-id start, r0, c0, nc, intra, codes)`` per non-empty
    block in ``run()``'s concatenation order; emission decodes the
    slices of each block overlapping the requested edge-id range.
    """

    def __init__(self, blocks):
        self.blocks = blocks
        self.starts = [b[0] for b in blocks]

    def __getstate__(self):
        return self.blocks

    def __setstate__(self, blocks):
        self.__init__(blocks)

    def __call__(self, lo, hi):
        tails_parts, heads_parts = [], []
        pos = max(0, bisect.bisect_right(self.starts, lo) - 1)
        for start, r0, c0, nc, intra, codes in self.blocks[pos:]:
            if start >= hi:
                break
            codes = spill_array(codes)
            stop = start + len(codes)
            if stop <= lo:
                continue
            piece = np.asarray(codes[max(lo - start, 0):hi - start])
            t, h = StochasticBlockModel._decode_block_codes(
                piece, r0, c0, nc, intra
            )
            tails_parts.append(t)
            heads_parts.append(h)
        if not tails_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        return np.concatenate(tails_parts), np.concatenate(heads_parts)


class StochasticBlockModel(StructureGenerator):
    """SG sampling from an SBM.

    Parameters (via ``initialize``)
    -------------------------------
    sizes:
        ``(k,)`` group sizes (``run(n)`` requires ``sum(sizes) == n``), or
    fractions:
        ``(k,)`` relative group sizes normalised against ``n``.
    probabilities:
        ``(k, k)`` symmetric matrix of per-pair edge probabilities
        ``delta_ij``.

    The per-block edge count is drawn from a Gaussian approximation of
    the binomial and the edges sampled uniformly without replacement
    within the block, mirroring :mod:`repro.structure.erdos_renyi`.
    """

    name = "sbm"
    emission = "chunkable"
    access = "random"

    def parameter_names(self):
        return {"sizes", "fractions", "probabilities"}

    def _validate_params(self):
        probs = self._params.get("probabilities")
        if probs is not None:
            p = np.asarray(probs, dtype=np.float64)
            if p.ndim != 2 or p.shape[0] != p.shape[1]:
                raise ValueError("probabilities must be a square matrix")
            if (p < 0).any() or (p > 1).any():
                raise ValueError("probabilities must lie in [0, 1]")
            if not np.allclose(p, p.T):
                raise ValueError("probabilities must be symmetric")

    def _group_sizes(self, n):
        if "sizes" in self._params:
            sizes = np.asarray(self._params["sizes"], dtype=np.int64)
            if int(sizes.sum()) != n:
                raise ValueError(
                    f"group sizes sum to {int(sizes.sum())}, expected n={n}"
                )
            return sizes
        fractions = self._params.get("fractions")
        if fractions is None:
            raise ValueError("SBM needs 'sizes' or 'fractions'")
        f = np.asarray(fractions, dtype=np.float64)
        f = f / f.sum()
        quota = f * n
        sizes = np.floor(quota).astype(np.int64)
        remainder = n - int(sizes.sum())
        if remainder:
            order = np.argsort(-(quota - sizes), kind="stable")
            sizes[order[:remainder]] += 1
        return sizes

    def group_labels(self, n):
        """Ground-truth group label per node id (ids laid out group by
        group: group 0 gets ids ``0..q0-1``, and so on)."""
        sizes = self._group_sizes(n)
        return np.repeat(np.arange(sizes.size, dtype=np.int64), sizes)

    def _sample_block_codes(self, rows, cols, prob, stream, intra):
        """Sample the linear edge codes of one block (no decoding).

        The code array is the block's only whole-size state, which is
        what chunked emission spills; decoding a slice of it is
        elementwise and therefore chunk-pure.
        """
        r0, r1 = rows
        c0, c1 = cols
        nr, nc = r1 - r0, c1 - c0
        if intra:
            total = nr * (nr - 1) // 2
        else:
            total = nr * nc
        if total == 0 or prob <= 0.0:
            return np.empty(0, dtype=np.int64)
        mean = total * prob
        std = np.sqrt(total * prob * (1.0 - prob))
        z = float(stream.normal(np.int64(0), 0.0, 1.0))
        m = int(round(mean + std * z))
        m = max(0, min(m, total))
        if m == 0:
            return np.empty(0, dtype=np.int64)
        # Sample m distinct linear indices within the block.
        chosen = np.empty(0, dtype=np.int64)
        round_id = 0
        while chosen.size < m:
            need = m - chosen.size
            draw = int(need * 1.3) + 16
            sub = stream.substream(f"round{round_id}")
            codes = (sub.uniform(np.arange(draw, dtype=np.int64))
                     * total).astype(np.int64)
            chosen = np.unique(np.concatenate([chosen, codes]))
            round_id += 1
        if chosen.size > m:
            keys = stream.substream("thin").uniform(chosen)
            chosen = chosen[np.argsort(keys, kind="stable")[:m]]
        return chosen

    @staticmethod
    def _decode_block_codes(chosen, r0, c0, nc, intra):
        """Decode block codes into ``(tails, heads)`` (elementwise)."""
        if intra:
            k = chosen.astype(np.float64)
            u = np.floor((1.0 + np.sqrt(1.0 + 8.0 * k)) / 2.0).astype(np.int64)
            tri = u * (u - 1) // 2
            u[tri > chosen] -= 1
            tri = u * (u - 1) // 2
            u[chosen >= tri + u] += 1
            tri = u * (u - 1) // 2
            v = chosen - tri
            return r0 + v, r0 + u
        u = chosen // nc
        v = chosen % nc
        return r0 + u, c0 + v

    def _sample_block(self, rows, cols, prob, stream, intra):
        """Sample edges of one block (rows x cols id ranges)."""
        chosen = self._sample_block_codes(rows, cols, prob, stream, intra)
        if chosen.size == 0:
            return np.empty((0, 2), dtype=np.int64)
        tails, heads = self._decode_block_codes(
            chosen, rows[0], cols[0], cols[1] - cols[0], intra
        )
        return np.stack([tails, heads], axis=1)

    def _block_layout(self, n):
        probs = self._params.get("probabilities")
        if probs is None:
            raise ValueError("SBM needs 'probabilities'")
        probs = np.asarray(probs, dtype=np.float64)
        sizes = self._group_sizes(n)
        if sizes.size != probs.shape[0]:
            raise ValueError(
                f"{sizes.size} groups but probability matrix is "
                f"{probs.shape[0]}x{probs.shape[1]}"
            )
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        return probs, sizes, offsets

    def _generate(self, n, stream):
        probs, sizes, offsets = self._block_layout(n)
        chunks = []
        k = sizes.size
        for i in range(k):
            for j in range(i, k):
                block_stream = stream.substream(f"block{i}.{j}")
                pairs = self._sample_block(
                    (offsets[i], offsets[i + 1]),
                    (offsets[j], offsets[j + 1]),
                    probs[i, j],
                    block_stream,
                    intra=(i == j),
                )
                if pairs.size:
                    chunks.append(pairs)
        if chunks:
            pairs = np.concatenate(chunks, axis=0)
        else:
            pairs = np.empty((0, 2), dtype=np.int64)
        return EdgeTable(
            self.name,
            pairs[:, 0],
            pairs[:, 1],
            num_tail_nodes=n,
            num_head_nodes=n,
        )

    def _generate_chunked(self, n, stream, chunk_edges, spill):
        probs, sizes, offsets = self._block_layout(n)
        k = sizes.size
        # (edge-id start, r0, c0, nc, intra, codes) per non-empty block,
        # in the same (i, j), i <= j order run() concatenates them.
        blocks = []
        total_m = 0
        for i in range(k):
            for j in range(i, k):
                block_stream = stream.substream(f"block{i}.{j}")
                chosen = self._sample_block_codes(
                    (offsets[i], offsets[i + 1]),
                    (offsets[j], offsets[j + 1]),
                    probs[i, j],
                    block_stream,
                    intra=(i == j),
                )
                if chosen.size:
                    codes = spill(f"block{i}.{j}", chosen)
                    blocks.append((
                        total_m,
                        int(offsets[i]),
                        int(offsets[j]),
                        int(offsets[j + 1] - offsets[j]),
                        i == j,
                        codes,
                    ))
                    total_m += chosen.size
        return EdgeChunkStream(
            self.name, total_m, n, n, False, chunk_edges,
            _BlockEmitter(blocks),
        )

    def expected_edges_for_nodes(self, n):
        probs = self._params.get("probabilities")
        if probs is None:
            raise ValueError("generator not configured")
        probs = np.asarray(probs, dtype=np.float64)
        sizes = self._group_sizes(n).astype(np.float64)
        expected = 0.0
        for i in range(sizes.size):
            expected += probs[i, i] * sizes[i] * (sizes[i] - 1) / 2
            for j in range(i + 1, sizes.size):
                expected += probs[i, j] * sizes[i] * sizes[j]
        return int(expected)
