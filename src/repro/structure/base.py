"""The Structure Generator (SG) interface of Section 4.1.

An SG is a pluggable object with three methods:

``initialize(**params)``
    configure the generator (degree distributions, model knobs, ...),
``run(n) -> EdgeTable``
    generate the edges of a graph with ``n`` nodes,
``get_num_nodes(num_edges) -> n``
    invert the scale: how many nodes produce roughly ``num_edges`` edges —
    this is how a user sizes a graph by edge count.

All SGs here are deterministic given their seed, return simple
(loop-free, parallel-free) undirected graphs unless documented
otherwise, and operate on numpy edge arrays throughout.
"""

from __future__ import annotations

import numpy as np

from ..prng import RandomStream
from ..tables import EdgeTable

__all__ = [
    "EdgeChunkStream",
    "PackedCodeEmitter",
    "StructureGenerator",
    "empty_emit",
    "ensure_even_sum",
]


def empty_emit(lo, hi):
    """Emitter for zero-edge streams (module-level: picklable)."""
    return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)


class PackedCodeEmitter:
    """Picklable decoder over spilled ``tail * divisor + head`` codes.

    The output of an out-of-core dedup pass
    (:func:`repro.io.spool.dedup_first_occurrence`) is a spilled
    sequence of packed codes in final edge-id order; emission pages a
    slice and unpacks it, so any chunk of the deduplicated table is
    derivable without touching the rest.
    """

    def __init__(self, codes, divisor):
        self.codes = codes
        self.divisor = np.int64(divisor)

    def __call__(self, lo, hi):
        from ..io.spool import spill_array

        codes = np.asarray(spill_array(self.codes)[lo:hi])
        return codes // self.divisor, codes % self.divisor


class EdgeChunkStream:
    """Chunked structure emission: the out-of-core twin of ``run``.

    A chunkable generator's :meth:`StructureGenerator.run_chunked`
    returns one of these instead of a materialised
    :class:`~repro.tables.EdgeTable`.  It carries the table's metadata
    up front (``num_edges``, endpoint id-space sizes, orientation) and
    emits the edge columns in bounded id-range chunks via
    :meth:`chunks`; the concatenation of all chunks is bit-identical
    to ``run(n)`` for the same seed and parameters, which is what lets
    the sharded executor generate structure without ever holding the
    whole edge list.

    ``emit(lo, hi)`` must be a pure function of the range — streams are
    counter-based, so re-iterating the chunks is cheap and exact.
    """

    def __init__(self, name, num_edges, num_tail_nodes, num_head_nodes,
                 directed, chunk_edges, emit):
        self.name = str(name)
        self.num_edges = int(num_edges)
        self.num_tail_nodes = int(num_tail_nodes)
        self.num_head_nodes = int(num_head_nodes)
        self.directed = bool(directed)
        self.chunk_edges = int(chunk_edges)
        if self.chunk_edges < 1:
            raise ValueError("chunk_edges must be >= 1")
        self._emit = emit

    def __len__(self):
        return self.num_edges

    @property
    def is_bipartite(self):
        return self.num_tail_nodes != self.num_head_nodes

    @property
    def num_nodes(self):
        """Node id-space size for monopartite streams."""
        if self.is_bipartite:
            raise ValueError(
                f"chunk stream {self.name!r} is bipartite; use "
                "num_tail_nodes / num_head_nodes"
            )
        return self.num_tail_nodes

    def emit(self, lo, hi):
        """``(tails, heads)`` of edge ids ``[lo, hi)`` as ``int64``.

        The random-access entry point: because emission is a pure
        function of the range, any page of edges can be produced
        without touching the rest — this is what the virtual-graph
        serving layer pages edge tables with (see docs/serving.md).
        """
        lo, hi = int(lo), int(hi)
        if not 0 <= lo <= hi <= self.num_edges:
            raise IndexError(
                f"chunk stream {self.name!r}: range [{lo}, {hi}) out "
                f"of bounds [0, {self.num_edges})"
            )
        tails, heads = self._emit(lo, hi)
        tails = np.ascontiguousarray(tails, dtype=np.int64)
        heads = np.ascontiguousarray(heads, dtype=np.int64)
        if len(tails) != hi - lo or len(heads) != hi - lo:
            raise ValueError(
                f"chunk stream {self.name!r}: emit({lo}, {hi}) "
                f"returned {len(tails)}/{len(heads)} rows"
            )
        return tails, heads

    def chunks(self):
        """Yield ``(chunk_start, tails, heads)`` in edge-id order.

        Arrays are ``int64`` — also for empty streams, so downstream
        spools inherit the correct dtype from zero-edge tables (the
        same empty-shard contract the property pipeline guarantees).
        """
        for lo in range(0, self.num_edges, self.chunk_edges):
            hi = min(lo + self.chunk_edges, self.num_edges)
            tails, heads = self.emit(lo, hi)
            yield lo, tails, heads

    def to_edge_table(self):
        """Materialise the stream (tests and global matching stages)."""
        parts = list(self.chunks())
        if parts:
            tails = np.concatenate([t for _, t, _ in parts])
            heads = np.concatenate([h for _, _, h in parts])
        else:
            tails = np.empty(0, dtype=np.int64)
            heads = np.empty(0, dtype=np.int64)
        return EdgeTable(
            self.name,
            tails,
            heads,
            num_tail_nodes=self.num_tail_nodes,
            num_head_nodes=self.num_head_nodes,
            directed=self.directed,
        )


class StructureGenerator:
    """Base class implementing the SG contract.

    Subclasses override :meth:`_generate` (and usually
    :meth:`expected_edges_for_nodes`, from which the default
    :meth:`get_num_nodes` inversion derives).

    Parameters are passed either to the constructor or to
    :meth:`initialize`; the two are equivalent, the latter exists to
    mirror the paper's interface literally.
    """

    #: Name under which the generator is registered for the DSL.
    name = "abstract"

    #: First-class emission classification (see docs/scaling.md):
    #: ``"chunkable"`` generators can emit their edge table in bounded
    #: id-range chunks bit-identical to ``run``; ``"sequential"``
    #: generators need the whole graph in memory (iterative models such
    #: as preferential attachment or forest fire).  Whether a *given
    #: configuration* can chunk is answered by :meth:`chunkable`.
    emission = "sequential"

    #: First-class access classification (see docs/serving.md):
    #: ``"random"`` generators derive any edge page — and therefore
    #: point queries such as :meth:`neighbors_of` / :meth:`edge_exists`
    #: — purely from ``(seed, indices)`` via chunked emission, without
    #: materialising the graph.  ``"sequential"`` generators can only
    #: answer such queries from a materialised table.  Whether a
    #: *given configuration* is random-access is answered by
    #: :meth:`random_access`.
    access = "sequential"

    def __init__(self, seed=0, **params):
        self.seed = int(seed)
        self._params = {}
        if params:
            self.initialize(**params)

    # -- SG contract -------------------------------------------------------

    def initialize(self, **params):
        """Configure the generator; unknown keys raise immediately."""
        valid = self.parameter_names()
        for key in params:
            if key not in valid:
                raise TypeError(
                    f"{type(self).__name__} got unexpected parameter "
                    f"{key!r}; valid: {sorted(valid)}"
                )
        self._params.update(params)
        self._validate_params()

    def run(self, n):
        """Generate an :class:`EdgeTable` for a graph with ``n`` nodes."""
        n = int(n)
        if n < 0:
            raise ValueError("n must be nonnegative")
        stream = RandomStream(self.seed, f"sg.{self.name}")
        return self._generate(n, stream)

    def chunkable(self, n):
        """Can *this configuration* emit ``run(n)`` in chunks?

        Defaults to the class-level :attr:`emission` flag; subclasses
        override when chunkability depends on parameters (e.g. R-MAT
        with ``simplify=True`` needs a global deduplication pass).
        """
        return self.emission == "chunkable"

    def run_chunked(self, n, chunk_edges, spill=None):
        """Chunked twin of :meth:`run`: an :class:`EdgeChunkStream`.

        ``spill`` is an optional callable ``spill(name, array) ->
        array-like`` used to park per-stream state that is genuinely
        global (sampled pair codes, degree offsets) outside RAM; the
        sharded executor passes a disk spiller that hands back a
        memory-mapped view.  ``None`` keeps state in memory.

        Raises ``TypeError`` for sequential generators/configurations.
        """
        n = int(n)
        if n < 0:
            raise ValueError("n must be nonnegative")
        if not self.chunkable(n):
            raise TypeError(
                f"{type(self).__name__} ({self.name!r}) is sequential "
                "for this configuration; run() is the only emission path"
            )
        stream = RandomStream(self.seed, f"sg.{self.name}")
        if spill is None:
            spill = lambda name, array: array  # noqa: E731
        return self._generate_chunked(n, stream, int(chunk_edges), spill)

    def _generate_chunked(self, n, stream, chunk_edges, spill):
        raise NotImplementedError(
            f"{type(self).__name__} declares emission="
            f"{self.emission!r} but does not implement chunked emission"
        )

    def random_access(self, n):
        """Can *this configuration* answer point queries from the seed?

        Random access requires chunked emission (pages are re-derived,
        never stored), so the capability is the conjunction of the
        class-level :attr:`access` flag and :meth:`chunkable`.
        """
        return self.access == "random" and self.chunkable(n)

    def neighbors_of(self, n, ids, chunk_edges=65_536, spill=None,
                     direction="both"):
        """Neighbour lists of ``ids`` in ``run(n)``, seed-derived.

        Scans the chunked emission (bounded memory: one chunk of edges
        at a time, per-stream global state parked via ``spill``) and
        collects, in edge-id order, the opposite endpoint of every
        incident edge.  The result agrees exactly with what a
        materialised edge table would give:

        * ``direction="out"`` — heads of edges whose tail is the node;
        * ``direction="in"`` — tails of edges whose head is the node;
        * ``direction="both"`` — out-matches then in-matches per chunk,
          with self-loops contributing once.

        Returns a dict ``{id: int64 array}`` covering every requested
        id (empty arrays for isolated nodes).

        Raises ``TypeError`` for configurations where
        :meth:`random_access` is false.
        """
        if not self.random_access(n):
            raise TypeError(
                f"{type(self).__name__} ({self.name!r}) is not "
                "random-access for this configuration; materialise "
                "run() to query neighbourhoods"
            )
        if direction not in ("out", "in", "both"):
            raise ValueError(
                f"direction must be out/in/both, got {direction!r}"
            )
        ids = np.unique(np.asarray(ids, dtype=np.int64))
        collected = {int(i): [] for i in ids.tolist()}
        stream = self.run_chunked(n, chunk_edges, spill=spill)
        for _, tails, heads in stream.chunks():
            if direction in ("out", "both"):
                for pos in np.flatnonzero(np.isin(tails, ids)).tolist():
                    collected[int(tails[pos])].append(int(heads[pos]))
            if direction in ("in", "both"):
                mask = np.isin(heads, ids)
                if direction == "both":
                    # Self-loops already matched on the tail side.
                    mask &= tails != heads
                for pos in np.flatnonzero(mask).tolist():
                    collected[int(heads[pos])].append(int(tails[pos]))
        return {
            node: np.asarray(neigh, dtype=np.int64)
            for node, neigh in collected.items()
        }

    def edge_exists(self, n, src, dst, chunk_edges=65_536, spill=None):
        """Is there an edge between ``src`` and ``dst`` in ``run(n)``?

        Derived from the seed by scanning chunked emission with early
        exit; for undirected streams both orientations count.  Raises
        ``TypeError`` for non-random-access configurations.
        """
        if not self.random_access(n):
            raise TypeError(
                f"{type(self).__name__} ({self.name!r}) is not "
                "random-access for this configuration; materialise "
                "run() to query edges"
            )
        src, dst = int(src), int(dst)
        stream = self.run_chunked(n, chunk_edges, spill=spill)
        for _, tails, heads in stream.chunks():
            hit = (tails == src) & (heads == dst)
            if not stream.directed:
                hit |= (tails == dst) & (heads == src)
            if hit.any():
                return True
        return False

    def get_num_nodes(self, num_edges):
        """Number of nodes so that ``run(n)`` yields ≈ ``num_edges`` edges.

        The default implementation inverts
        :meth:`expected_edges_for_nodes` by bisection, which works for any
        monotone edge-count model.
        """
        num_edges = int(num_edges)
        if num_edges < 0:
            raise ValueError("num_edges must be nonnegative")
        if num_edges == 0:
            return 0
        lo, hi = 1, 2
        while self.expected_edges_for_nodes(hi) < num_edges:
            hi *= 2
            if hi > 1 << 40:
                raise ValueError("edge target not reachable")
        while lo < hi:
            mid = (lo + hi) // 2
            if self.expected_edges_for_nodes(mid) < num_edges:
                lo = mid + 1
            else:
                hi = mid
        return lo

    # -- subclass hooks ------------------------------------------------------

    def parameter_names(self):
        """Set of accepted ``initialize`` keys.  Override in subclasses."""
        return set()

    def _validate_params(self):
        """Validate the current parameter set; raise ``ValueError`` on
        inconsistent configurations.  Called after every ``initialize``."""

    def _generate(self, n, stream):
        raise NotImplementedError

    def expected_edges_for_nodes(self, n):
        """Expected edge count of ``run(n)``; used by the default
        :meth:`get_num_nodes`.  Override for generators with a known
        edge-count model."""
        raise NotImplementedError(
            f"{type(self).__name__} does not define an edge-count model"
        )

    # -- conveniences ----------------------------------------------------------

    def param(self, key, default=None):
        """Read a configured parameter."""
        return self._params.get(key, default)

    def __repr__(self):
        kv = ", ".join(f"{k}={v!r}" for k, v in sorted(self._params.items()))
        return f"{type(self).__name__}(seed={self.seed}, {kv})"


def ensure_even_sum(degrees, stream):
    """Make a degree sequence realisable: force an even degree sum.

    Configuration-model constructions pair half-edges, which requires an
    even total.  When the sampled sum is odd, one node chosen
    deterministically from ``stream`` gets one extra half-edge.
    """
    degrees = np.asarray(degrees, dtype=np.int64).copy()
    if degrees.size and int(degrees.sum()) % 2 == 1:
        bump = int(stream.randint(np.int64(degrees.size), 0, degrees.size))
        degrees[bump] += 1
    return degrees


def edge_table_from_pairs(name, pairs, n, directed=False):
    """Build an :class:`EdgeTable` from an ``(m, 2)`` pair array."""
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.size == 0:
        pairs = pairs.reshape(0, 2)
    return EdgeTable(
        name,
        pairs[:, 0],
        pairs[:, 1],
        num_tail_nodes=n,
        num_head_nodes=n,
        directed=directed,
    )
