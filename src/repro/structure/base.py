"""The Structure Generator (SG) interface of Section 4.1.

An SG is a pluggable object with three methods:

``initialize(**params)``
    configure the generator (degree distributions, model knobs, ...),
``run(n) -> EdgeTable``
    generate the edges of a graph with ``n`` nodes,
``get_num_nodes(num_edges) -> n``
    invert the scale: how many nodes produce roughly ``num_edges`` edges —
    this is how a user sizes a graph by edge count.

All SGs here are deterministic given their seed, return simple
(loop-free, parallel-free) undirected graphs unless documented
otherwise, and operate on numpy edge arrays throughout.
"""

from __future__ import annotations

import numpy as np

from ..prng import RandomStream
from ..tables import EdgeTable

__all__ = ["StructureGenerator", "ensure_even_sum"]


class StructureGenerator:
    """Base class implementing the SG contract.

    Subclasses override :meth:`_generate` (and usually
    :meth:`expected_edges_for_nodes`, from which the default
    :meth:`get_num_nodes` inversion derives).

    Parameters are passed either to the constructor or to
    :meth:`initialize`; the two are equivalent, the latter exists to
    mirror the paper's interface literally.
    """

    #: Name under which the generator is registered for the DSL.
    name = "abstract"

    def __init__(self, seed=0, **params):
        self.seed = int(seed)
        self._params = {}
        if params:
            self.initialize(**params)

    # -- SG contract -------------------------------------------------------

    def initialize(self, **params):
        """Configure the generator; unknown keys raise immediately."""
        valid = self.parameter_names()
        for key in params:
            if key not in valid:
                raise TypeError(
                    f"{type(self).__name__} got unexpected parameter "
                    f"{key!r}; valid: {sorted(valid)}"
                )
        self._params.update(params)
        self._validate_params()

    def run(self, n):
        """Generate an :class:`EdgeTable` for a graph with ``n`` nodes."""
        n = int(n)
        if n < 0:
            raise ValueError("n must be nonnegative")
        stream = RandomStream(self.seed, f"sg.{self.name}")
        return self._generate(n, stream)

    def get_num_nodes(self, num_edges):
        """Number of nodes so that ``run(n)`` yields ≈ ``num_edges`` edges.

        The default implementation inverts
        :meth:`expected_edges_for_nodes` by bisection, which works for any
        monotone edge-count model.
        """
        num_edges = int(num_edges)
        if num_edges < 0:
            raise ValueError("num_edges must be nonnegative")
        if num_edges == 0:
            return 0
        lo, hi = 1, 2
        while self.expected_edges_for_nodes(hi) < num_edges:
            hi *= 2
            if hi > 1 << 40:
                raise ValueError("edge target not reachable")
        while lo < hi:
            mid = (lo + hi) // 2
            if self.expected_edges_for_nodes(mid) < num_edges:
                lo = mid + 1
            else:
                hi = mid
        return lo

    # -- subclass hooks ------------------------------------------------------

    def parameter_names(self):
        """Set of accepted ``initialize`` keys.  Override in subclasses."""
        return set()

    def _validate_params(self):
        """Validate the current parameter set; raise ``ValueError`` on
        inconsistent configurations.  Called after every ``initialize``."""

    def _generate(self, n, stream):
        raise NotImplementedError

    def expected_edges_for_nodes(self, n):
        """Expected edge count of ``run(n)``; used by the default
        :meth:`get_num_nodes`.  Override for generators with a known
        edge-count model."""
        raise NotImplementedError(
            f"{type(self).__name__} does not define an edge-count model"
        )

    # -- conveniences ----------------------------------------------------------

    def param(self, key, default=None):
        """Read a configured parameter."""
        return self._params.get(key, default)

    def __repr__(self):
        kv = ", ".join(f"{k}={v!r}" for k, v in sorted(self._params.items()))
        return f"{type(self).__name__}(seed={self.seed}, {kv})"


def ensure_even_sum(degrees, stream):
    """Make a degree sequence realisable: force an even degree sum.

    Configuration-model constructions pair half-edges, which requires an
    even total.  When the sampled sum is odd, one node chosen
    deterministically from ``stream`` gets one extra half-edge.
    """
    degrees = np.asarray(degrees, dtype=np.int64).copy()
    if degrees.size and int(degrees.sum()) % 2 == 1:
        bump = int(stream.randint(np.int64(degrees.size), 0, degrees.size))
        degrees[bump] += 1
    return degrees


def edge_table_from_pairs(name, pairs, n, directed=False):
    """Build an :class:`EdgeTable` from an ``(m, 2)`` pair array."""
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.size == 0:
        pairs = pairs.reshape(0, 2)
    return EdgeTable(
        name,
        pairs[:, 0],
        pairs[:, 1],
        num_tail_nodes=n,
        num_head_nodes=n,
        directed=directed,
    )
