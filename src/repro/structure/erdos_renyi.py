"""Erdős–Rényi G(n, p) and G(n, m) generators.

Not referenced in the paper's Table 1 but the canonical "no structure"
baseline: uniform random edges, Poisson-ish degrees, no communities, no
clustering.  Used in tests and ablations as the structure with *nothing*
to exploit for SBM-Part.
"""

from __future__ import annotations

import numpy as np

from .base import EdgeChunkStream, StructureGenerator, edge_table_from_pairs
from ..io.spool import SortedRuns, spill_array, spill_create, spill_seal

__all__ = ["ErdosRenyi", "ErdosRenyiM"]

#: Floor for spill-run sizes in the out-of-core sampler — small
#: ``chunk_edges`` settings must not explode into thousands of runs.
_MIN_RUN_ROWS = 65_536


def _sample_pair_codes(n, count, stream, name):
    """Sample ``count`` distinct linear pair codes from ``n`` nodes.

    Oversamples and deduplicates in rounds; with ``count`` well below the
    total pair count this converges in one or two rounds.  The returned
    order (sorted, or key-ranked after thinning) is the edge-id order of
    the generated table, so chunked decoding of slices reproduces
    single-shot generation exactly.
    """
    total_pairs = n * (n - 1) // 2
    if count > total_pairs:
        raise ValueError(
            f"{name}: requested {count} edges but only {total_pairs} "
            "distinct pairs exist"
        )
    chosen = np.empty(0, dtype=np.int64)
    round_id = 0
    while chosen.size < count:
        need = count - chosen.size
        draw = int(need * 1.3) + 16
        sub = stream.substream(f"round{round_id}")
        idx = np.arange(draw, dtype=np.int64)
        codes = (sub.uniform(idx) * total_pairs).astype(np.int64)
        chosen = np.unique(np.concatenate([chosen, codes]))
        round_id += 1
    if chosen.size > count:
        # Keep a deterministic subset: ranked by a per-code random key.
        key_stream = stream.substream("thin")
        keys = key_stream.uniform(chosen)
        chosen = chosen[np.argsort(keys, kind="stable")[:count]]
    return chosen


def _decode_pair_codes(chosen):
    """Decode linear pair codes into ``(v, u)`` endpoint columns.

    Elementwise triangular-number inverse (``u > v``), so decoding a
    slice of the code array equals the same slice of a whole-array
    decode — the property chunked emission relies on.
    """
    k = chosen.astype(np.float64)
    u = np.floor((1.0 + np.sqrt(1.0 + 8.0 * k)) / 2.0).astype(np.int64)
    # Guard against floating point at the triangle boundaries.
    tri = u * (u - 1) // 2
    too_big = tri > chosen
    u[too_big] -= 1
    tri = u * (u - 1) // 2
    too_small = chosen >= tri + u
    u[too_small] += 1
    tri = u * (u - 1) // 2
    v = chosen - tri
    return v, u


def _sample_distinct_pairs(n, count, stream, name):
    """Sample ``count`` distinct unordered non-loop pairs from ``n`` nodes."""
    v, u = _decode_pair_codes(_sample_pair_codes(n, count, stream, name))
    return np.stack([v, u], axis=1)


def _sample_pair_codes_spilled(n, count, stream, name, spill, run_rows):
    """Out-of-core twin of :func:`_sample_pair_codes`.

    Replays the exact same rounds — the draw sizes depend only on the
    running *distinct* count, which the duplicate-dropping merge of
    spilled sorted runs reproduces — but never holds more than one
    ``run_rows`` block of codes resident.  The thinning step becomes a
    second set of runs sorted by ``(random key, code)``: the uniform
    key is an elementwise function of the code, and the serial
    ``argsort(keys, kind="stable")`` tie-breaks by position in the
    code-sorted array, i.e. by code — so the merged ``(key, code)``
    order truncated at ``count`` is the serial result, bit for bit.
    Returns a sealed spill view over the final code sequence.
    """
    total_pairs = n * (n - 1) // 2
    if count > total_pairs:
        raise ValueError(
            f"{name}: requested {count} edges but only {total_pairs} "
            "distinct pairs exist"
        )
    runs = SortedRuns(spill, "er.codes", run_rows, unique=True)
    distinct = 0
    round_id = 0
    while distinct < count:
        need = count - distinct
        draw = int(need * 1.3) + 16
        sub = stream.substream(f"round{round_id}")
        for lo in range(0, draw, run_rows):
            idx = np.arange(lo, min(lo + run_rows, draw), dtype=np.int64)
            runs.push((sub.uniform(idx) * total_pairs).astype(np.int64))
        distinct = runs.total()
        round_id += 1
    final = spill_create(spill, "codes", count, np.int64)
    pos = 0
    if distinct == count:
        for codes, _ in runs.merge():
            final[pos:pos + codes.size] = codes
            pos += codes.size
    elif count:
        # Thin to a deterministic subset: ranked by a per-code key.
        key_stream = stream.substream("thin")
        ranked = SortedRuns(spill, "er.ranked", run_rows)
        for codes, _ in runs.merge():
            ranked.push(key_stream.uniform(codes), codes)
        for _, codes in ranked.merge():
            take = min(codes.size, count - pos)
            final[pos:pos + take] = codes[:take]
            pos += take
            if pos >= count:
                break
        ranked.cleanup()
    runs.cleanup()
    return spill_seal(spill, "codes", final)


class _CodeEmitter:
    """Picklable decoder over the (possibly spilled) pair codes."""

    def __init__(self, codes):
        self.codes = codes

    def __call__(self, lo, hi):
        return _decode_pair_codes(np.asarray(spill_array(self.codes)[lo:hi]))


def _pair_code_chunk_stream(name, n, m, stream, chunk_edges, spill):
    """Shared chunked-emission body of the two ER generators.

    The sampled code array is the only whole-table state; the sampler
    builds it through spilled sorted runs (identity spill keeps them in
    memory), after which each chunk decodes a bounded slice.
    """
    codes = _sample_pair_codes_spilled(
        n, m, stream.substream("pairs"), name, spill,
        max(int(chunk_edges), _MIN_RUN_ROWS),
    )
    return EdgeChunkStream(
        name, m, n, n, False, chunk_edges, _CodeEmitter(codes)
    )


class ErdosRenyi(StructureGenerator):
    """G(n, p): each pair independently present with probability ``p``.

    Realised by drawing ``Binomial(n_pairs, p)`` edges via the G(n, m)
    sampler, which is equivalent in distribution and much faster than
    testing all pairs.
    """

    name = "erdos_renyi"
    emission = "chunkable"
    access = "random"

    def parameter_names(self):
        return {"p"}

    def _validate_params(self):
        p = self._params.get("p")
        if p is not None and not 0.0 <= p <= 1.0:
            raise ValueError("p must lie in [0, 1]")

    def _draw_edge_count(self, n, stream):
        p = self._params.get("p")
        if p is None:
            raise ValueError("ErdosRenyi needs parameter 'p'")
        total_pairs = n * (n - 1) // 2
        mean = total_pairs * p
        std = np.sqrt(max(total_pairs * p * (1.0 - p), 0.0))
        # Gaussian approximation of the binomial count, deterministic.
        z = float(stream.normal(np.int64(1), 0.0, 1.0))
        m = int(round(mean + std * z))
        return max(0, min(m, total_pairs))

    def _generate(self, n, stream):
        m = self._draw_edge_count(n, stream)
        pairs = _sample_distinct_pairs(n, m, stream.substream("pairs"), self.name)
        return edge_table_from_pairs(self.name, pairs, n)

    def _generate_chunked(self, n, stream, chunk_edges, spill):
        m = self._draw_edge_count(n, stream)
        return _pair_code_chunk_stream(
            self.name, n, m, stream, chunk_edges, spill
        )

    def expected_edges_for_nodes(self, n):
        p = self._params.get("p")
        if p is None:
            raise ValueError("generator not configured")
        return int(n * (n - 1) // 2 * p)


class ErdosRenyiM(StructureGenerator):
    """G(n, m): exactly ``m`` uniform distinct edges."""

    name = "erdos_renyi_m"
    emission = "chunkable"
    access = "random"

    def parameter_names(self):
        return {"m", "edges_per_node"}

    def _validate_params(self):
        m = self._params.get("m")
        if m is not None and m < 0:
            raise ValueError("m must be nonnegative")
        epn = self._params.get("edges_per_node")
        if epn is not None and epn <= 0:
            raise ValueError("edges_per_node must be positive")

    def _edge_count(self, n):
        if "m" in self._params:
            return int(self._params["m"])
        epn = self._params.get("edges_per_node")
        if epn is None:
            raise ValueError("ErdosRenyiM needs 'm' or 'edges_per_node'")
        return int(n * epn)

    def _generate(self, n, stream):
        m = min(self._edge_count(n), n * (n - 1) // 2)
        pairs = _sample_distinct_pairs(n, m, stream.substream("pairs"), self.name)
        return edge_table_from_pairs(self.name, pairs, n)

    def _generate_chunked(self, n, stream, chunk_edges, spill):
        m = min(self._edge_count(n), n * (n - 1) // 2)
        return _pair_code_chunk_stream(
            self.name, n, m, stream, chunk_edges, spill
        )

    def expected_edges_for_nodes(self, n):
        return min(self._edge_count(n), n * (n - 1) // 2)
