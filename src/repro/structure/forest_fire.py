"""Forest Fire graphs (Leskovec, Kleinberg, Faloutsos).

Each new node picks an ambassador and "burns" through its
neighbourhood: it links to the ambassador, then recursively to a
geometrically-distributed number of the ambassador's neighbours, and so
on.  Produces heavy-tailed degrees, densification and strong local
clustering — a useful middle ground between the hub-dominated R-MAT
and the block-structured LFR for matching experiments.
"""

from __future__ import annotations

import numpy as np

from .base import StructureGenerator, edge_table_from_pairs

__all__ = ["ForestFire"]

#: Uniforms pre-drawn per arrival in the batched ragged pass; covers
#: the typical burn (ambassador + a few geometric draws and picks) so
#: lazy per-node extension stays rare.
_PREDRAW = 8

#: Arrivals per pre-draw block, bounding the flat uniform buffer to
#: ~_PREDRAW_BLOCK * _PREDRAW floats regardless of n.
_PREDRAW_BLOCK = 65_536


class ForestFire(StructureGenerator):
    """SG implementing the (undirected) Forest Fire model.

    Parameters (via ``initialize``)
    -------------------------------
    p:
        forward burning probability in [0, 1); the expected branching
        factor is ``p / (1 - p)`` (default 0.35).
    max_burn:
        hard cap on nodes burned per arriving node (keeps worst-case
        cost bounded; default 100).
    """

    name = "forest_fire"

    def parameter_names(self):
        return {"p", "max_burn"}

    def _validate_params(self):
        p = self._params.get("p", 0.35)
        if not 0.0 <= p < 1.0:
            raise ValueError("p must lie in [0, 1)")
        max_burn = self._params.get("max_burn", 100)
        if max_burn < 1:
            raise ValueError("max_burn must be >= 1")

    def _generate(self, n, stream):
        if n <= 1:
            return edge_table_from_pairs(
                self.name, np.empty((0, 2), dtype=np.int64), n
            )
        p = float(self._params.get("p", 0.35))
        max_burn = int(self._params.get("max_burn", 100))
        adjacency = [[] for _ in range(n)]
        tails = []
        heads = []

        def link(u, v):
            tails.append(u)
            heads.append(v)
            adjacency[u].append(v)
            adjacency[v].append(u)

        # Burn bookkeeping: a per-node stamp array replaces the
        # per-arrival ``burned`` set (membership test becomes a list
        # read).  The per-arrival PRNG work — formerly one substream
        # object plus a 2*max_burn-wide uniform batch per node, the
        # dominant cost — is batched across arrivals: one ragged
        # pre-draw supplies the first ``_PREDRAW`` uniforms of *every*
        # arrival's substream per block, and the rare burn that needs
        # more extends lazily from its own substream.  Draws are
        # random-access (``uniform(j)`` depends only on ``j``), so how
        # many are materialised ahead of time cannot change any value;
        # edges stay bit-identical (pinned by
        # ``tests/golden/matching/structures.npz``).  ``np.log(p)`` is
        # loop-invariant and hoisted; the numerator stays ``np.log``
        # so the geometric counts keep the exact bits of the original.
        burn_stamp = [-1] * n
        log_p = float(np.log(p)) if p > 0.0 else 0.0
        chunk = 2 * max_burn + 2
        predraw = _PREDRAW
        block = _PREDRAW_BLOCK
        np_log = np.log

        link(0, 1)
        for block_start in range(2, n, block):
            block_stop = min(block_start + block, n)
            arrivals = np.arange(
                block_start, block_stop, dtype=np.int64
            )
            flat, _ = stream.uniform_ragged(
                arrivals,
                np.full(arrivals.size, predraw, dtype=np.int64),
            )
            flat = flat.tolist()
            for new in range(block_start, block_stop):
                base = (new - block_start) * predraw
                uvals = flat[base:base + predraw]
                node_stream = None
                ambassador = int(uvals[0] * new)
                burn_stamp[new] = new
                burn_stamp[ambassador] = new
                frontier = [ambassador]
                cursor = 0
                link(new, ambassador)
                budget = max_burn - 1
                draw = 1
                while cursor < len(frontier) and budget > 0:
                    current = frontier[cursor]
                    cursor += 1
                    neighbors = [
                        v for v in adjacency[current]
                        if burn_stamp[v] != new
                    ]
                    if not neighbors:
                        continue
                    # Geometric(1 - p) number of neighbours to burn.
                    if draw >= len(uvals):
                        if node_stream is None:
                            node_stream = stream.indexed_substream(new)
                        lo = len(uvals)
                        uvals.extend(
                            node_stream.uniform(
                                np.arange(
                                    lo, lo + chunk, dtype=np.int64
                                )
                            ).tolist()
                        )
                    u = uvals[draw]
                    draw += 1
                    if p <= 0.0:
                        count = 0
                    else:
                        count = int(np_log(max(1.0 - u, 1e-12)) / log_p)
                        # log_{p}(1-u): geometric tail, success 1-p.
                    count = min(count, len(neighbors), budget)
                    if draw + count > len(uvals):
                        if node_stream is None:
                            node_stream = stream.indexed_substream(new)
                        lo = len(uvals)
                        uvals.extend(
                            node_stream.uniform(
                                np.arange(
                                    lo, lo + chunk + count,
                                    dtype=np.int64,
                                )
                            ).tolist()
                        )
                    for pick in range(count):
                        idx = int(uvals[draw] * len(neighbors))
                        draw += 1
                        target = neighbors.pop(idx)
                        burn_stamp[target] = new
                        frontier.append(target)
                        link(new, target)
                        budget -= 1
        pairs = np.stack(
            [np.asarray(tails, dtype=np.int64),
             np.asarray(heads, dtype=np.int64)],
            axis=1,
        )
        return edge_table_from_pairs(self.name, pairs, n).deduplicated()

    def expected_edges_for_nodes(self, n):
        p = float(self._params.get("p", 0.35))
        # Mean burned per node ~ 1 / (1 - 2p) for p < 0.5 (LKF
        # approximation), capped by max_burn.
        if p < 0.45:
            mean = 1.0 / max(1.0 - 2.0 * p, 0.1)
        else:
            mean = float(self._params.get("max_burn", 100)) / 2
        return int(n * mean)
