"""Watts–Strogatz small-world rings.

A ring lattice where each node connects to its ``k`` nearest neighbours,
with every edge rewired to a random endpoint with probability ``beta``.
Covers the "high clustering, short paths" corner of the structural
requirement space; also a useful adversarial input for SBM-Part (locality
without block structure).
"""

from __future__ import annotations

import numpy as np

from .base import StructureGenerator
from ..tables import EdgeTable

__all__ = ["WattsStrogatz"]


class WattsStrogatz(StructureGenerator):
    """SG implementing the Watts–Strogatz model.

    Parameters (via ``initialize``)
    -------------------------------
    k:
        even number of ring neighbours per node.
    beta:
        rewiring probability in [0, 1].
    """

    name = "watts_strogatz"

    def parameter_names(self):
        return {"k", "beta"}

    def _validate_params(self):
        k = self._params.get("k")
        if k is not None and (k < 2 or k % 2):
            raise ValueError("k must be an even integer >= 2")
        beta = self._params.get("beta", 0.0)
        if not 0.0 <= beta <= 1.0:
            raise ValueError("beta must lie in [0, 1]")

    def _generate(self, n, stream):
        k = self._params.get("k")
        if k is None:
            raise ValueError("WattsStrogatz needs parameter 'k'")
        beta = self._params.get("beta", 0.0)
        if n == 0:
            return EdgeTable(self.name, [], [], num_tail_nodes=0)
        half = min(k // 2, max(n - 1, 0))
        nodes = np.arange(n, dtype=np.int64)
        tails = np.repeat(nodes, half)
        offsets = np.tile(np.arange(1, half + 1, dtype=np.int64), n)
        heads = (tails + offsets) % n
        m = tails.size
        if beta > 0.0 and m:
            edge_idx = np.arange(m, dtype=np.int64)
            rewire = stream.substream("rewire").uniform(edge_idx) < beta
            new_heads = stream.substream("targets").randint(edge_idx, 0, n)
            heads = np.where(rewire, new_heads, heads)
        table = EdgeTable(
            self.name, tails, heads, num_tail_nodes=n, num_head_nodes=n
        )
        return table.deduplicated()

    def expected_edges_for_nodes(self, n):
        k = self._params.get("k")
        if k is None:
            raise ValueError("generator not configured")
        return n * (k // 2)
