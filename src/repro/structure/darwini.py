"""Darwini: clustering-coefficient *distribution* per degree (Edunov et al.).

Darwini extends BTER: instead of matching only the average clustering
coefficient per degree, it matches the *distribution* of clustering
coefficients among the nodes of each degree (the ``ccdd`` column of the
paper's Table 1).  The published algorithm:

1. assign each vertex a target degree and a target clustering
   coefficient drawn from the per-degree cc distribution;
2. convert the cc target into a target number of closed wedges
   (triangles incident to the vertex);
3. bucket vertices by similar triangle demand and build small dense
   Erdős–Rényi "communities" inside each bucket, sized so the expected
   triangle count matches the demand;
4. satisfy the remaining degree with global Chung–Lu wiring.

Our implementation follows that structure with one simplification,
recorded in DESIGN.md: buckets are keyed by the quantised pair
(degree, cc target), and the in-bucket ER block reuses the BTER affinity
construction with ``rho`` solved from the *bucket's own* cc target rather
than from a global per-degree average.  This is precisely the "finer
granularity" of Darwini, realised with the same machinery.
"""

from __future__ import annotations

import numpy as np

from .base import StructureGenerator, edge_table_from_pairs
from .bter import chung_lu_pairs
from .degree_sequences import powerlaw_degree_sequence
from ..tables import EdgeTable

__all__ = ["Darwini"]


class Darwini(StructureGenerator):
    """SG implementing the (simplified) Darwini model.

    Parameters (via ``initialize``)
    -------------------------------
    degrees:
        explicit degree sequence, or ``avg_degree`` / ``max_degree`` /
        ``gamma`` power-law parameters (as in BTER).
    cc_sampler:
        callable ``(degree, u) -> cc`` mapping a degree and a uniform
        draw to a clustering-coefficient target; the default draws from
        a Beta-like spread around a decaying mean, giving every degree a
        nontrivial cc *distribution* rather than a point mass.
    cc_bins:
        number of quantisation bins for cc targets within a degree
        (default 8).
    """

    name = "darwini"

    @staticmethod
    def default_cc_sampler(degree, u):
        """Decaying mean with multiplicative spread (u in [0, 1))."""
        if degree < 2:
            return 0.0
        mean = 0.95 * np.exp(-(degree - 2) / 15.0)
        # Spread: scale by a factor in [0.5, 1.5).
        return float(np.clip(mean * (0.5 + u), 0.0, 1.0))

    def parameter_names(self):
        return {
            "degrees",
            "avg_degree",
            "max_degree",
            "gamma",
            "cc_sampler",
            "cc_bins",
        }

    def _degree_sequence(self, n, stream):
        if "degrees" in self._params:
            degrees = np.asarray(self._params["degrees"], dtype=np.int64)
            if degrees.size != n:
                raise ValueError(
                    f"degree sequence length {degrees.size} != n {n}"
                )
            return degrees
        return powerlaw_degree_sequence(
            n,
            self._params.get("gamma", 2.0),
            self._params.get("avg_degree", 20),
            self._params.get("max_degree", 50),
            stream.substream("degrees"),
        )

    def _generate(self, n, stream):
        if n == 0:
            return EdgeTable(self.name, [], [], num_tail_nodes=0)
        degrees = self._degree_sequence(n, stream)
        sampler = self._params.get("cc_sampler", self.default_cc_sampler)
        bins = int(self._params.get("cc_bins", 8))
        if bins < 1:
            raise ValueError("cc_bins must be >= 1")

        # Per-node cc targets, then quantised bucket keys (degree, bin).
        u = stream.substream("cc").uniform(np.arange(n, dtype=np.int64))
        cc_targets = np.array(
            [sampler(int(d), float(ui)) for d, ui in zip(degrees, u)]
        )
        cc_bin = np.minimum((cc_targets * bins).astype(np.int64), bins - 1)
        keys = degrees * np.int64(bins) + cc_bin

        order = np.lexsort((cc_bin, degrees))
        eligible = order[degrees[order] >= 2]
        excess = degrees.astype(np.float64).copy()

        chunks = []
        pos = 0
        block_id = 0
        while pos < eligible.size:
            lead = eligible[pos]
            lead_degree = int(degrees[lead])
            lead_key = keys[lead]
            # Block spans same-bucket nodes only, up to degree + 1 members.
            limit = min(pos + lead_degree + 1, eligible.size)
            end = pos
            while end < limit and keys[eligible[end]] == lead_key:
                end += 1
            members = eligible[pos:end]
            pos = end
            size = members.size
            if size < 2:
                continue
            # Solve rho from the bucket's own cc target.
            rho = float(np.cbrt(cc_targets[lead]))
            if rho > 0.0:
                block_stream = stream.substream(f"block{block_id}")
                iu, ju = np.triu_indices(size, k=1)
                draw = block_stream.uniform(
                    np.arange(iu.size, dtype=np.int64)
                )
                take = draw < rho
                if take.any():
                    chunks.append(
                        np.stack(
                            [members[iu[take]], members[ju[take]]], axis=1
                        )
                    )
                excess[members] -= rho * (size - 1)
            block_id += 1

        np.maximum(excess, 0.0, out=excess)
        phase2 = chung_lu_pairs(excess, stream.substream("phase2"))
        if phase2.size:
            chunks.append(phase2)
        if chunks:
            pairs = np.concatenate(chunks, axis=0)
        else:
            pairs = np.empty((0, 2), dtype=np.int64)
        return edge_table_from_pairs(self.name, pairs, n).deduplicated()

    def expected_edges_for_nodes(self, n):
        if "degrees" in self._params:
            return int(np.asarray(self._params["degrees"]).sum() // 2)
        return int(n * self._params.get("avg_degree", 20) / 2)
