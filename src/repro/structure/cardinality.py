"""Special-case generators for 1→1 and 1→* edge types (paper Section 5).

The paper notes that one-to-one and one-to-many cardinalities "could be
efficiently handled by more specific and efficient operators" that
generate structure and guarantee the cardinality constraint *exactly*
(SBM-Part, being greedy, cannot promise strict constraints).  These are
those operators.

For a 1→* edge type like ``creates`` (a Person creates many Messages,
each Message has exactly one creator), the tail-side degree follows a
user distribution (``D_creates``, a power law in the running example)
and every head node gets exactly one incident edge — which also *sizes*
the head node type: #Messages = #creates edges, the dependency the
engine's analysis resolves.
"""

from __future__ import annotations

import numpy as np

from .base import EdgeChunkStream, StructureGenerator
from ..io.spool import spill_array
from ..tables import EdgeTable

__all__ = ["OneToManyGenerator", "OneToOneGenerator"]


class _OffsetEmitter:
    """Picklable 1→* emitter over (possibly spilled) degree offsets."""

    def __init__(self, offsets):
        self.offsets = offsets

    def __call__(self, lo, hi):
        edge_ids = np.arange(lo, hi, dtype=np.int64)
        tails = (
            np.searchsorted(
                spill_array(self.offsets), edge_ids, side="right"
            ) - 1
        ).astype(np.int64)
        return tails, edge_ids


class OneToManyGenerator(StructureGenerator):
    """Bipartite 1→* edges: tail degree from a distribution, head degree 1.

    ``run(n)`` takes ``n`` as the number of *tail* nodes; the number of
    head nodes (== number of edges) follows from the sampled tail
    degrees.  Head ids are assigned in tail order, which downstream
    matching may permute.

    Parameters (via ``initialize``)
    -------------------------------
    degree_distribution:
        :class:`~repro.stats.Distribution` over tail out-degrees
        (category ``i`` means degree ``i + degree_offset``).
    degree_offset:
        added to sampled categories (default 0; set 1 to forbid
        zero-degree tails).
    """

    name = "one_to_many"
    emission = "chunkable"
    access = "random"

    def parameter_names(self):
        return {"degree_distribution", "degree_offset"}

    def _validate_params(self):
        offset = self._params.get("degree_offset", 0)
        if offset < 0:
            raise ValueError("degree_offset must be nonnegative")

    def _tail_degrees(self, n, stream):
        dist = self._params.get("degree_distribution")
        if dist is None:
            raise ValueError("OneToManyGenerator needs 'degree_distribution'")
        offset = int(self._params.get("degree_offset", 0))
        return dist.sample(stream, np.arange(n, dtype=np.int64)) + offset

    def _generate(self, n, stream):
        degrees = self._tail_degrees(n, stream.substream("degrees"))
        m = int(degrees.sum())
        tails = np.repeat(np.arange(n, dtype=np.int64), degrees)
        heads = np.arange(m, dtype=np.int64)
        return EdgeTable(
            self.name,
            tails,
            heads,
            num_tail_nodes=n,
            num_head_nodes=m,
            directed=True,
        )

    def _generate_chunked(self, n, stream, chunk_edges, spill):
        degrees = self._tail_degrees(n, stream.substream("degrees"))
        m = int(degrees.sum())
        # Degree totals are the genuinely-global state here (ROADMAP's
        # "degree totals" spill case): O(n_tails) offsets, spillable.
        offsets = spill(
            "offsets",
            np.concatenate([
                np.zeros(1, dtype=np.int64),
                np.cumsum(degrees, dtype=np.int64),
            ]),
        )

        return EdgeChunkStream(
            self.name, m, n, m, True, chunk_edges, _OffsetEmitter(offsets)
        )

    def expected_edges_for_nodes(self, n):
        dist = self._params.get("degree_distribution")
        if dist is None:
            raise ValueError("generator not configured")
        offset = int(self._params.get("degree_offset", 0))
        return int(n * (dist.mean() + offset))


class OneToOneGenerator(StructureGenerator):
    """1→1 edges: a bijection between two id spaces of equal size.

    The bijection is a deterministic pseudo-random permutation, so the
    pairing is non-trivial but exactly one edge touches each node on
    both sides — a strict constraint SBM-Part could only approximate.

    Parameters (via ``initialize``)
    -------------------------------
    shuffled:
        when False (default True), head ``i`` simply pairs tail ``i``.
    """

    name = "one_to_one"

    def parameter_names(self):
        return {"shuffled"}

    def _generate(self, n, stream):
        tails = np.arange(n, dtype=np.int64)
        if self._params.get("shuffled", True) and n > 1:
            heads = stream.substream("perm").permutation(n)
        else:
            heads = tails.copy()
        return EdgeTable(
            self.name,
            tails,
            heads,
            num_tail_nodes=n,
            num_head_nodes=n,
            directed=True,
        )

    def expected_edges_for_nodes(self, n):
        return n
