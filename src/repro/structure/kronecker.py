"""Stochastic Kronecker graphs (general initiator matrices).

R-MAT is the special case of a 2x2 initiator; the general model
(Leskovec et al.) raises an ``s x s`` probability initiator to the
k-th Kronecker power and samples edges from the resulting matrix.
Sampling follows the standard R-MAT-style recursive descent — per
edge, one cell of the initiator is drawn per level — which is exact
for edge placement proportional to the Kronecker product.
"""

from __future__ import annotations

import numpy as np

from .base import StructureGenerator
from ..tables import EdgeTable

__all__ = ["KroneckerGenerator"]


class KroneckerGenerator(StructureGenerator):
    """SG sampling a stochastic Kronecker graph.

    Parameters (via ``initialize``)
    -------------------------------
    initiator:
        ``(s, s)`` nonnegative weight matrix (normalised internally).
    edge_factor:
        edges per node (default 16, Graph500-style).
    simplify:
        drop loops/duplicates (default True).

    ``run(n)`` requires ``n`` to be a power of ``s``.
    """

    name = "kronecker"

    def parameter_names(self):
        return {"initiator", "edge_factor", "simplify"}

    def _validate_params(self):
        initiator = self._params.get("initiator")
        if initiator is not None:
            matrix = np.asarray(initiator, dtype=np.float64)
            if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
                raise ValueError("initiator must be square")
            if matrix.shape[0] < 2:
                raise ValueError("initiator must be at least 2x2")
            if (matrix < 0).any() or matrix.sum() <= 0:
                raise ValueError(
                    "initiator must be nonnegative with positive mass"
                )
        edge_factor = self._params.get("edge_factor", 16)
        if edge_factor <= 0:
            raise ValueError("edge_factor must be positive")

    def _levels_for(self, n, side):
        levels = 0
        size = 1
        while size < n:
            size *= side
            levels += 1
        if size != n:
            raise ValueError(
                f"Kronecker requires n to be a power of {side}, got {n}"
            )
        return levels

    def _generate(self, n, stream):
        initiator = self._params.get("initiator")
        if initiator is None:
            raise ValueError("KroneckerGenerator needs 'initiator'")
        matrix = np.asarray(initiator, dtype=np.float64)
        matrix = matrix / matrix.sum()
        side = matrix.shape[0]
        if n == 0:
            return EdgeTable(self.name, [], [], num_tail_nodes=0)
        levels = self._levels_for(n, side)
        m = int(n * self._params.get("edge_factor", 16))

        flat = matrix.ravel()
        cdf = np.cumsum(flat)
        tails = np.zeros(m, dtype=np.int64)
        heads = np.zeros(m, dtype=np.int64)
        edge_idx = np.arange(m, dtype=np.int64)
        for level in range(levels):
            level_stream = stream.substream(f"level{level}")
            u = level_stream.uniform(edge_idx)
            cells = np.searchsorted(cdf, u, side="right")
            cells = np.minimum(cells, flat.size - 1)
            rows = cells // side
            cols = cells % side
            tails = tails * side + rows
            heads = heads * side + cols
        table = EdgeTable(
            self.name, tails, heads, num_tail_nodes=n, num_head_nodes=n
        )
        if self._params.get("simplify", True):
            table = table.deduplicated()
        return table

    def expected_edges_for_nodes(self, n):
        return int(n * self._params.get("edge_factor", 16))
