"""Attributed structure generation: structure + labels in one step.

Paper §5: operators that "generate both the property values and the
graph structure at the same time, which would boost performance
[and] allow reproducing strict constraints reliably".  This generator
realises that idea for the property-structure correlation case: instead
of generating an anonymous structure and *matching* it to a property
table (SBM-Part), it samples the structure directly from the SBM
induced by the requested joint — the joint then holds by construction,
in expectation, with no matching step.

The trade-off mirrors the paper's discussion: direct generation nails
the joint but gives up structural freedom (the graph *is* an SBM —
no LFR communities, no R-MAT hubs beyond what the blocks induce);
matching keeps any structure and approximates the joint.  The
comparison benchmark quantifies exactly this.
"""

from __future__ import annotations

import numpy as np

from .base import StructureGenerator
from .sbm import StochasticBlockModel

__all__ = ["AttributedSbmGenerator", "AttributedResult"]


class AttributedResult:
    """Structure plus the per-node group labels that generated it."""

    __slots__ = ("table", "labels")

    def __init__(self, table, labels):
        self.table = table
        self.labels = labels


class AttributedSbmGenerator(StructureGenerator):
    """SG generating structure and correlated labels simultaneously.

    Parameters (via ``initialize``)
    -------------------------------
    joint:
        :class:`~repro.stats.JointDistribution` — the target
        ``P(X, Y)`` over endpoint values.
    group_sizes:
        explicit ``(k,)`` node counts per value; when omitted the
        joint's marginal splits ``n`` (largest remainder).
    avg_degree:
        target mean degree (sets the edge count ``m``; default 10).

    ``run_with_labels(n)`` returns the structure *and* the labels;
    the labels realise the matching outcome exactly, so a PT whose
    value counts equal ``group_sizes`` maps onto the graph with zero
    matching error (up to SBM sampling noise).
    """

    name = "attributed_sbm"

    def parameter_names(self):
        return {"joint", "group_sizes", "avg_degree"}

    def _validate_params(self):
        avg_degree = self._params.get("avg_degree", 10)
        if avg_degree <= 0:
            raise ValueError("avg_degree must be positive")

    def _sizes(self, n):
        joint = self._params.get("joint")
        if joint is None:
            raise ValueError("AttributedSbmGenerator needs 'joint'")
        if "group_sizes" in self._params:
            sizes = np.asarray(
                self._params["group_sizes"], dtype=np.int64
            )
            if int(sizes.sum()) != n:
                raise ValueError(
                    f"group sizes sum to {int(sizes.sum())}, "
                    f"expected {n}"
                )
            return sizes
        marginal = joint.marginal()
        quota = marginal * n
        sizes = np.floor(quota).astype(np.int64)
        remainder = n - int(sizes.sum())
        if remainder:
            order = np.argsort(-(quota - sizes), kind="stable")
            sizes[order[:remainder]] += 1
        return sizes

    def run_with_labels(self, n):
        """Generate and return the :class:`AttributedResult`."""
        n = int(n)
        joint = self._params.get("joint")
        if joint is None:
            raise ValueError("AttributedSbmGenerator needs 'joint'")
        sizes = self._sizes(n)
        m = int(n * self._params.get("avg_degree", 10) / 2)
        delta = joint.sbm_probabilities(sizes, m)
        sbm = StochasticBlockModel(
            seed=self.seed, sizes=sizes, probabilities=delta
        )
        table = sbm.run(n)
        labels = sbm.group_labels(n)
        return AttributedResult(table, labels)

    def _generate(self, n, stream):
        return self.run_with_labels(n).table

    def expected_edges_for_nodes(self, n):
        return int(n * self._params.get("avg_degree", 10) / 2)
