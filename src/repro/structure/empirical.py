"""Empirical structure generator: mimic an observed graph.

The requirements section assumes users can supply *empirical* inputs
("a file with an empirical degree distribution").  This SG takes a real
graph (as an edge table, an edge-list file, or a raw degree sequence),
extracts its degree distribution, and generates a configuration-model
graph of any requested size reproducing that distribution — the
standard "scale a real dataset up" workflow of benchmark design.
"""

from __future__ import annotations

import numpy as np

from .base import StructureGenerator, edge_table_from_pairs
from .configuration import pair_stubs_with_repair
from ..stats import empirical_degree_distribution

__all__ = ["EmpiricalDegreeGenerator"]


class EmpiricalDegreeGenerator(StructureGenerator):
    """SG resampling an observed degree distribution at any scale.

    Parameters (via ``initialize``)
    -------------------------------
    source:
        an :class:`~repro.tables.EdgeTable` whose degree distribution
        to mimic, or
    degrees:
        a raw observed degree sequence (any length — it is resampled
        to the requested ``n``), or
    path:
        an edge-list file to load the source graph from.
    """

    name = "empirical_degrees"

    def parameter_names(self):
        return {"source", "degrees", "path"}

    def _observed_degrees(self):
        if "degrees" in self._params:
            return np.asarray(self._params["degrees"], dtype=np.int64)
        if "source" in self._params:
            return self._params["source"].degrees()
        if "path" in self._params:
            from ..io import read_edgelist

            return read_edgelist(self._params["path"]).degrees()
        raise ValueError(
            "EmpiricalDegreeGenerator needs 'source', 'degrees' or "
            "'path'"
        )

    def _generate(self, n, stream):
        observed = self._observed_degrees()
        if observed.size == 0:
            return edge_table_from_pairs(
                self.name, np.empty((0, 2), dtype=np.int64), n
            )
        distribution = empirical_degree_distribution(observed)
        degrees = distribution.sample(
            stream.substream("degrees"), np.arange(n, dtype=np.int64)
        )
        if int(degrees.sum()) % 2 == 1:
            bump = int(stream.randint(np.int64(n), 0, n))
            degrees[bump] += 1
        pairs = pair_stubs_with_repair(
            degrees, stream.substream("pairing")
        )
        return edge_table_from_pairs(self.name, pairs, n)

    def expected_edges_for_nodes(self, n):
        observed = self._observed_degrees()
        if observed.size == 0:
            return 0
        return int(n * observed.mean() / 2)
