"""Random hyperbolic graphs (Krioukov et al.).

Nodes are placed in a hyperbolic disc (radius ``R``); pairs closer than
``R`` in hyperbolic distance connect.  The model produces power-law
degree distributions *and* strong clustering from a single geometric
mechanism, making it a popular modern alternative to BTER-style
constructions — and another distinct point in the structure zoo for
matching experiments (geometry-induced communities).

The implementation is the threshold (temperature 0) variant with exact
pairwise distances, vectorised in chunks — O(n^2) work but small
constants; fine for the laptop-scale experiments here.
"""

from __future__ import annotations

import numpy as np

from .base import StructureGenerator, edge_table_from_pairs

__all__ = ["HyperbolicGenerator"]


class HyperbolicGenerator(StructureGenerator):
    """SG sampling a threshold random hyperbolic graph.

    Parameters (via ``initialize``)
    -------------------------------
    avg_degree:
        target mean degree; calibrates the disc radius ``R`` by a
        deterministic bisection against the measured mean on a pilot
        subsample (default 10).
    gamma:
        target power-law exponent (> 2, default 2.5); controls the
        radial density via ``alpha = (gamma - 1) / 2``.
    chunk:
        pairwise-distance chunk size (memory/time trade-off).
    """

    name = "hyperbolic"

    def parameter_names(self):
        return {"avg_degree", "gamma", "chunk"}

    def _validate_params(self):
        gamma = self._params.get("gamma", 2.5)
        if gamma <= 2.0:
            raise ValueError("gamma must exceed 2")
        avg_degree = self._params.get("avg_degree", 10)
        if avg_degree <= 0:
            raise ValueError("avg_degree must be positive")

    @staticmethod
    def _coordinates(n, alpha, radius, stream):
        ids = np.arange(n, dtype=np.int64)
        theta = stream.substream("theta").uniform(ids) * 2.0 * np.pi
        # Radial CDF: sinh-weighted; inverse transform via
        # r = acosh(1 + (cosh(alpha R) - 1) u) / alpha.
        u = stream.substream("radius").uniform(ids)
        r = np.arccosh(
            1.0 + (np.cosh(alpha * radius) - 1.0) * u
        ) / alpha
        return r, theta

    @staticmethod
    def _edges_for_radius(r, theta, radius, chunk):
        n = r.size
        cosh_r = np.cosh(r)
        sinh_r = np.sinh(r)
        threshold = np.cosh(radius)
        tails = []
        heads = []
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            # Pairwise hyperbolic distance block (i in chunk, j > i).
            dtheta = np.abs(
                theta[start:stop, np.newaxis] - theta[np.newaxis, :]
            )
            dtheta = np.minimum(dtheta, 2.0 * np.pi - dtheta)
            cosh_d = (
                cosh_r[start:stop, np.newaxis] * cosh_r[np.newaxis, :]
                - sinh_r[start:stop, np.newaxis]
                * sinh_r[np.newaxis, :] * np.cos(dtheta)
            )
            block_i, block_j = np.nonzero(cosh_d <= threshold)
            global_i = block_i + start
            keep = global_i < block_j  # upper triangle only
            tails.append(global_i[keep])
            heads.append(block_j[keep])
        if tails:
            return np.concatenate(tails), np.concatenate(heads)
        return (np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64))

    def _generate(self, n, stream):
        if n < 2:
            return edge_table_from_pairs(
                self.name, np.empty((0, 2), dtype=np.int64), n
            )
        gamma = float(self._params.get("gamma", 2.5))
        avg_degree = float(self._params.get("avg_degree", 10))
        chunk = int(self._params.get("chunk", 512))
        alpha = (gamma - 1.0) / 2.0

        # Calibrate R by bisection on the realised mean degree of a
        # pilot subsample (deterministic).
        pilot = min(n, 800)
        low, high = 0.5, 4.0 * np.log(max(n, 3))
        for _ in range(18):
            mid = (low + high) / 2.0
            r, theta = self._coordinates(
                pilot, alpha, mid, stream.substream("pilot")
            )
            t, h = self._edges_for_radius(r, theta, mid, chunk)
            mean = 2.0 * t.size / pilot
            # Scale pilot density to full size: mean degree of an RHG
            # grows ~ linearly with n at fixed R, so compare against
            # the pilot-equivalent target.
            target = avg_degree * pilot / n
            if mean < target:
                high = mid
            else:
                low = mid
        radius = (low + high) / 2.0

        r, theta = self._coordinates(
            n, alpha, radius, stream.substream("final")
        )
        tails, heads = self._edges_for_radius(r, theta, radius, chunk)
        pairs = np.stack([tails, heads], axis=1)
        return edge_table_from_pairs(self.name, pairs, n)

    def expected_edges_for_nodes(self, n):
        return int(n * self._params.get("avg_degree", 10) / 2)
