"""Structure generator registry and capability matrix.

The DSL refers to SGs by name; this registry resolves those names.  Each
entry also carries the capability flags of the paper's Table 1 (which
schema / structure / distribution aspects the generator can be
explicitly configured for), from which the Table 1 benchmark regenerates
the related-work summary — including rows for external systems
(LDBC-SNB, Myriad) that are frameworks rather than single SGs and are
represented here as documented capability sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .attributed import AttributedSbmGenerator
from .barabasi_albert import BarabasiAlbert
from .bipartite import BipartiteConfiguration
from .bter import BTER
from .cardinality import OneToManyGenerator, OneToOneGenerator
from .cascade import CascadeForest
from .configuration import ConfigurationModel
from .darwini import Darwini
from .empirical import EmpiricalDegreeGenerator
from .erdos_renyi import ErdosRenyi, ErdosRenyiM
from .forest_fire import ForestFire
from .hyperbolic import HyperbolicGenerator
from .kronecker import KroneckerGenerator
from .lfr import LFR
from .rmat import RMat
from .sbm import StochasticBlockModel
from .watts_strogatz import WattsStrogatz

__all__ = [
    "Capability",
    "GeneratorInfo",
    "available_generators",
    "capability_matrix",
    "create_generator",
    "register_generator",
    "EXTERNAL_SYSTEMS",
]


@dataclass(frozen=True)
class Capability:
    """Capability flags mirroring the columns of the paper's Table 1."""

    node_types: bool = False
    node_properties: bool = False
    edge_types: bool = False
    edge_properties: bool = False
    edge_cardinality: bool = False
    structure: tuple = ()  # e.g. ("dd", "cc", "pl", "c", "accd", "ccdd")
    property_value_distributions: bool = False
    property_structure_correlation: bool = False
    scale_by_nodes: bool = False
    scale_by_edges: bool = False
    scale_by_nodes_plus_edges: bool = False
    scalable: bool = False

    def row(self):
        """Render as the x/abbreviation cells of Table 1."""

        def mark(flag):
            return "x" if flag else ""

        return {
            "node type": mark(self.node_types),
            "node prop.": mark(self.node_properties),
            "edge type": mark(self.edge_types),
            "edge prop.": mark(self.edge_properties),
            "edge cardinality": mark(self.edge_cardinality),
            "structure": ", ".join(self.structure),
            "property values distribution": mark(
                self.property_value_distributions
            ),
            "property structure correlation": mark(
                self.property_structure_correlation
            ),
            "node": mark(self.scale_by_nodes),
            "edge": mark(self.scale_by_edges),
            "node+edge": mark(self.scale_by_nodes_plus_edges),
            "scalability": mark(self.scalable),
        }


@dataclass
class GeneratorInfo:
    """Registry entry: constructor plus capability flags."""

    name: str
    factory: type
    capability: Capability
    description: str = ""


_REGISTRY: dict[str, GeneratorInfo] = {}


def register_generator(info):
    """Register (or replace) a generator entry."""
    _REGISTRY[info.name] = info


def available_generators():
    """Mapping of name -> :class:`GeneratorInfo` (copy)."""
    return dict(_REGISTRY)


def create_generator(name, seed=0, **params):
    """Instantiate a registered SG by name."""
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown structure generator {name!r}; "
            f"available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name].factory(seed=seed, **params)


def _builtin(name, factory, structure, description, scalable=True,
             cardinality=False):
    register_generator(
        GeneratorInfo(
            name=name,
            factory=factory,
            capability=Capability(
                structure=structure,
                edge_cardinality=cardinality,
                scale_by_nodes=True,
                scale_by_edges=True,  # via get_num_nodes
                scalable=scalable,
            ),
            description=description,
        )
    )


_builtin("rmat", RMat, ("pl", "dd"),
         "Recursive matrix generator (Graph500)")
_builtin("lfr", LFR, ("pl", "dd", "c"),
         "LFR community benchmark graphs")
_builtin("bter", BTER, ("dd", "accd"),
         "Block two-level Erdos-Renyi")
_builtin("darwini", Darwini, ("dd", "ccdd"),
         "Darwini: per-degree clustering distribution")
_builtin("empirical_degrees", EmpiricalDegreeGenerator, ("dd",),
         "Configuration model over an observed degree distribution")
_builtin("erdos_renyi", ErdosRenyi, (),
         "G(n, p) uniform random graph")
_builtin("erdos_renyi_m", ErdosRenyiM, (),
         "G(n, m) uniform random graph")
_builtin("configuration", ConfigurationModel, ("dd",),
         "Configuration model over a degree sequence")
_builtin("kronecker", KroneckerGenerator, ("pl", "dd"),
         "Stochastic Kronecker graphs (general initiator)")
_builtin("forest_fire", ForestFire, ("pl", "dd", "cc"),
         "Forest Fire model (densification, clustering)",
         scalable=False)
_builtin("hyperbolic", HyperbolicGenerator, ("pl", "dd", "cc"),
         "Random hyperbolic graphs (geometry-induced clustering)",
         scalable=False)
_builtin("barabasi_albert", BarabasiAlbert, ("pl", "dd"),
         "Preferential attachment", scalable=False)
_builtin("watts_strogatz", WattsStrogatz, ("cc",),
         "Small-world ring lattice")
_builtin("sbm", StochasticBlockModel, ("c",),
         "Stochastic block model")
register_generator(
    GeneratorInfo(
        name="attributed_sbm",
        factory=AttributedSbmGenerator,
        capability=Capability(
            structure=("c",),
            property_structure_correlation=True,
            scale_by_nodes=True,
            scale_by_edges=True,
            scalable=True,
        ),
        description="Structure + correlated labels in one step (§5)",
    )
)
_builtin("one_to_many", OneToManyGenerator, ("dd",),
         "Strict 1-to-many cardinality operator", cardinality=True)
_builtin("one_to_one", OneToOneGenerator, (),
         "Strict 1-to-1 cardinality operator", cardinality=True)
_builtin("bipartite_configuration", BipartiteConfiguration, ("dd",),
         "Bipartite configuration model", cardinality=True)
_builtin("cascade_forest", CascadeForest, (),
         "Reply-tree cascade forest", cardinality=True)


#: Documented capability rows for the external systems of Table 1 (these
#: are *not* runnable here; they anchor the reproduced comparison table).
EXTERNAL_SYSTEMS = {
    "LDBC-SNB": Capability(
        node_properties=True,
        structure=("dd", "cc"),
        property_value_distributions=True,
        property_structure_correlation=True,
        scale_by_nodes_plus_edges=True,
        scalable=True,
    ),
    "Myriad": Capability(
        node_types=True,
        node_properties=True,
        edge_types=True,
        edge_cardinality=True,  # 1-to-1 and 1-to-many only
        structure=("dd",),
        property_value_distributions=True,
        scale_by_nodes=True,
        scalable=True,
    ),
    "RMat": Capability(
        structure=("pl", "dd"),
        scale_by_nodes=True,
        scale_by_edges=True,
    ),
    "LFR": Capability(
        structure=("pl", "dd", "c"),
        scale_by_nodes=True,
    ),
    "BTER": Capability(
        structure=("dd", "accd"),
        scale_by_nodes=True,
        scalable=True,
    ),
    "Darwini": Capability(
        structure=("dd", "ccdd"),
        scale_by_nodes=True,
        scalable=True,
    ),
    "DataSynth (this work)": Capability(
        node_types=True,
        node_properties=True,
        edge_types=True,
        edge_properties=True,
        edge_cardinality=True,
        structure=("dd", "cc", "pl", "c", "accd", "ccdd"),
        property_value_distributions=True,
        property_structure_correlation=True,
        scale_by_nodes=True,
        scale_by_edges=True,
        scale_by_nodes_plus_edges=True,
        scalable=True,
    ),
}


def capability_matrix(include_external=True):
    """Rows of the reproduced Table 1.

    Returns a list of ``(system_name, row_dict)``; internal SGs are
    derived from their registered capabilities, external systems from
    :data:`EXTERNAL_SYSTEMS`.
    """
    rows = []
    if include_external:
        for name, cap in EXTERNAL_SYSTEMS.items():
            rows.append((name, cap.row()))
    for name, info in sorted(_REGISTRY.items()):
        rows.append((f"repro:{name}", info.capability.row()))
    return rows
