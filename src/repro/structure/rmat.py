"""R-MAT: the recursive matrix generator (Chakrabarti et al., SDM'04).

R-MAT drops each edge into the adjacency matrix by recursively descending
into one of four quadrants with probabilities ``(a, b, c, d)``; with the
Graph500 defaults ``(0.57, 0.19, 0.19, 0.05)`` this yields a skewed
power-law-ish degree distribution with strong hubs and essentially no
community structure — which is exactly why the paper uses it as the
"hard" structure for SBM-Part (Figures 3 and 4).

Scale ``s`` means ``n = 2^s`` nodes; the Graph500 convention of
``edge_factor`` edges per node (default 16) sets ``m``.
"""

from __future__ import annotations

import numpy as np

from .base import (
    EdgeChunkStream,
    PackedCodeEmitter,
    StructureGenerator,
    empty_emit,
)
from ..io.spool import dedup_first_occurrence
from ..tables import EdgeTable

__all__ = ["RMat"]

_DEFAULT_A = 0.57
_DEFAULT_B = 0.19
_DEFAULT_C = 0.19
_DEFAULT_EDGE_FACTOR = 16

#: Floor for spill-run sizes in the chunked dedup: tiny ``chunk_edges``
#: settings must not explode into thousands of run files.
_MIN_RUN_ROWS = 65_536


class _RawEmitter:
    """Picklable quadrant-descent emitter for the multigraph stream."""

    def __init__(self, plan, scale):
        self.plan = plan
        self.scale = scale

    def __call__(self, lo, hi):
        return RMat._descend(
            self.plan, self.scale, np.arange(lo, hi, dtype=np.int64)
        )


class RMat(StructureGenerator):
    """SG implementing R-MAT / Graph500 Kronecker-style generation.

    Parameters (via ``initialize``)
    -------------------------------
    a, b, c:
        quadrant probabilities; ``d = 1 - a - b - c``.
    edge_factor:
        edges per node (Graph500 default 16).
    noise:
        per-level multiplicative jitter on (a, b, c, d) à la smoothed
        Kronecker ("noisy R-MAT"), default 0 (off).
    simplify:
        collapse duplicates / self loops into a simple undirected graph
        (default True; the matching evaluation uses simple graphs).

    Notes
    -----
    ``run(n)`` requires ``n`` to be a power of two (pad or use
    ``scale=`` semantics); use :meth:`run_scale` for the conventional
    parameterisation.
    """

    name = "rmat"
    emission = "chunkable"
    access = "random"

    def chunkable(self, n):
        # Raw (multigraph) emission is a pure function of the edge-id
        # range; simplify=True adds a global deduplication pass, which
        # the chunked path runs out of core through spilled sorted runs
        # (see _generate_chunked) — so both configurations chunk.
        return True

    def random_access(self, n):
        # simplify=True pages edges from the spilled dedup result, so
        # emission is chunkable but not derivable from (seed, indices)
        # alone — point queries need the materialised table.
        if self._params.get("simplify", True):
            return False
        return super().random_access(n)

    def parameter_names(self):
        return {"a", "b", "c", "edge_factor", "noise", "simplify"}

    def _validate_params(self):
        a = self._params.get("a", _DEFAULT_A)
        b = self._params.get("b", _DEFAULT_B)
        c = self._params.get("c", _DEFAULT_C)
        if min(a, b, c) < 0 or a + b + c > 1.0 + 1e-12:
            raise ValueError(
                f"invalid quadrant probabilities a={a}, b={b}, c={c}"
            )
        noise = self._params.get("noise", 0.0)
        if not 0.0 <= noise < 1.0:
            raise ValueError("noise must lie in [0, 1)")
        ef = self._params.get("edge_factor", _DEFAULT_EDGE_FACTOR)
        if ef <= 0:
            raise ValueError("edge_factor must be positive")

    # -- public conveniences ---------------------------------------------------

    def run_scale(self, scale):
        """Generate with the Graph500 convention: ``n = 2^scale``."""
        return self.run(1 << int(scale))

    # -- generation ------------------------------------------------------------

    def _resolve_scale(self, n):
        scale = int(np.ceil(np.log2(max(n, 2))))
        if (1 << scale) != n:
            raise ValueError(
                f"RMat requires n to be a power of two, got {n}; "
                "use run_scale(scale)"
            )
        return scale

    def _level_plan(self, scale, stream):
        """Per-level ``(stream, la, lb, lc, ld)`` — the whole random
        state of a run.  Streams are counter-based, so the plan makes
        edge generation a pure function of the edge-id range."""
        a = self._params.get("a", _DEFAULT_A)
        b = self._params.get("b", _DEFAULT_B)
        c = self._params.get("c", _DEFAULT_C)
        d = 1.0 - a - b - c
        noise = self._params.get("noise", 0.0)
        plan = []
        for level in range(scale):
            level_stream = stream.substream(f"level{level}")
            if noise:
                jitter_stream = stream.substream(f"jitter{level}")
                mu = 1.0 + noise * (
                    2.0 * float(jitter_stream.uniform(np.int64(level))) - 1.0
                )
                la, lb, lc, ld = a * mu, b, c, d
                total = la + lb + lc + ld
                la, lb, lc, ld = la / total, lb / total, lc / total, ld / total
            else:
                la, lb, lc, ld = a, b, c, d
            plan.append((level_stream, la, lb, lc, ld))
        return plan

    @staticmethod
    def _descend(plan, scale, edge_idx):
        """Quadrant descent for the given edge ids (elementwise pure)."""
        tails = np.zeros(edge_idx.size, dtype=np.int64)
        heads = np.zeros(edge_idx.size, dtype=np.int64)
        for level, (level_stream, la, lb, lc, ld) in enumerate(plan):
            u = level_stream.uniform(edge_idx)
            # Quadrant choice: 0 -> (0,0), 1 -> (0,1), 2 -> (1,0), 3 -> (1,1)
            right = (u >= la) & (u < la + lb) | (u >= la + lb + lc)
            down = u >= la + lb
            bit = np.int64(1 << (scale - 1 - level))
            tails += down.astype(np.int64) * bit
            heads += right.astype(np.int64) * bit
        return tails, heads

    def _generate(self, n, stream):
        if n == 0:
            return EdgeTable(self.name, [], [], num_tail_nodes=0)
        scale = self._resolve_scale(n)
        edge_factor = self._params.get("edge_factor", _DEFAULT_EDGE_FACTOR)
        m = int(n * edge_factor)
        plan = self._level_plan(scale, stream)
        tails, heads = self._descend(
            plan, scale, np.arange(m, dtype=np.int64)
        )
        table = EdgeTable(
            self.name, tails, heads, num_tail_nodes=n, num_head_nodes=n
        )
        if self._params.get("simplify", True):
            table = table.deduplicated()
        return table

    def _generate_chunked(self, n, stream, chunk_edges, spill):
        if n == 0:
            return EdgeChunkStream(
                self.name, 0, 0, 0, False, chunk_edges, empty_emit
            )
        scale = self._resolve_scale(n)
        edge_factor = self._params.get("edge_factor", _DEFAULT_EDGE_FACTOR)
        m = int(n * edge_factor)
        plan = self._level_plan(scale, stream)
        emit = _RawEmitter(plan, scale)
        if self._params.get("simplify", True):
            return self._simplify_chunked(
                n, m, emit, chunk_edges, spill
            )
        return EdgeChunkStream(
            self.name, m, n, n, False, chunk_edges, emit
        )

    def _simplify_chunked(self, n, m, emit, chunk_edges, spill):
        """Out-of-core twin of ``EdgeTable.deduplicated()``.

        Each edge-id block is descended, canonicalised to ``(min,
        max)`` with self loops dropped, and packed to ``lo * n + hi``
        codes; :func:`~repro.io.spool.dedup_first_occurrence` then
        reproduces the serial first-occurrence dedup through spilled
        sorted runs, never holding the raw ``m``-edge multigraph.
        """
        run_rows = max(int(chunk_edges), _MIN_RUN_ROWS)

        def blocks():
            for lo in range(0, m, run_rows):
                tails, heads = emit(lo, min(lo + run_rows, m))
                pair_lo = np.minimum(tails, heads)
                pair_hi = np.maximum(tails, heads)
                keep = pair_lo != pair_hi
                edge_ids = np.arange(lo, lo + tails.size, dtype=np.int64)
                yield (
                    pair_lo[keep] * np.int64(n) + pair_hi[keep],
                    edge_ids[keep],
                )

        total, codes = dedup_first_occurrence(
            spill, "rmat", blocks(), run_rows
        )
        return EdgeChunkStream(
            self.name, total, n, n, False, chunk_edges,
            PackedCodeEmitter(codes, n),
        )

    def expected_edges_for_nodes(self, n):
        edge_factor = self._params.get("edge_factor", _DEFAULT_EDGE_FACTOR)
        # Deduplication erases a scale-dependent fraction; the raw count
        # is the conventional scale measure and a fine upper bound for
        # get_num_nodes inversion.
        return int(n * edge_factor)
