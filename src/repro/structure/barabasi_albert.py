"""Barabási–Albert preferential attachment.

A standard scale-free baseline: each new node attaches to ``m`` existing
nodes with probability proportional to their degree.  Included for the
structural-requirement coverage (power-law degrees with a growth
mechanism rather than R-MAT's recursive one).
"""

from __future__ import annotations

import numpy as np

from .base import StructureGenerator, edge_table_from_pairs

__all__ = ["BarabasiAlbert"]


class BarabasiAlbert(StructureGenerator):
    """SG implementing Barabási–Albert attachment.

    Parameters (via ``initialize``)
    -------------------------------
    m:
        edges added per incoming node (also the size of the seed clique).

    Implementation uses the repeated-nodes trick: maintaining a list in
    which each node appears once per unit of degree makes
    degree-proportional sampling a uniform draw from the list.
    """

    name = "barabasi_albert"

    def parameter_names(self):
        return {"m"}

    def _validate_params(self):
        m = self._params.get("m")
        if m is not None and m < 1:
            raise ValueError("m must be >= 1")

    def _generate(self, n, stream):
        m = self._params.get("m")
        if m is None:
            raise ValueError("BarabasiAlbert needs parameter 'm'")
        if n <= m:
            # Too small for attachment; return a complete graph.
            iu, ju = np.triu_indices(n, k=1)
            return edge_table_from_pairs(
                self.name, np.stack([iu, ju], axis=1), n
            )
        # Seed: star over the first m + 1 nodes (keeps degrees positive).
        seed_t = np.zeros(m, dtype=np.int64)
        seed_h = np.arange(1, m + 1, dtype=np.int64)
        tails = [seed_t]
        heads = [seed_h]
        # Degree-repeated list seeded from the star.
        rep_list = np.concatenate([seed_t, seed_h]).tolist()
        # The rejection loop below replays the original draw-by-draw
        # sampling exactly, but the PRNG calls — formerly one scalar
        # ``randint`` per attempt, the dominant cost — are vectorised:
        # one ``uniform(arange)`` call pre-draws a chunk of attempts
        # per node and ``randint(i, 0, span)`` is algebraically
        # ``int(uniform(i) * span)``, so the choices are bit-identical
        # (pinned by ``tests/golden/matching/structures.npz``).
        chunk = max(2 * m, 16)
        arange_cache = np.arange(chunk, dtype=np.int64)
        for new in range(m + 1, n):
            node_stream = stream.indexed_substream(new)
            uvals = node_stream.uniform(arange_cache).tolist()
            rep_len = len(rep_list)
            chosen = set()
            attempt = 0
            while len(chosen) < m:
                if attempt + 1 >= len(uvals):
                    base = len(uvals)
                    uvals.extend(
                        node_stream.uniform(
                            np.arange(
                                base, base + chunk, dtype=np.int64
                            )
                        ).tolist()
                    )
                chosen.add(rep_list[int(uvals[attempt] * rep_len)])
                attempt += 1
                if attempt > 50 * m:
                    # Fall back to uniform over existing nodes.
                    chosen.add(int(uvals[attempt] * new))
            targets = np.fromiter(chosen, dtype=np.int64, count=m)
            tails.append(np.full(m, new, dtype=np.int64))
            heads.append(targets)
            rep_list.extend(targets.tolist())
            rep_list.extend([new] * m)
        pairs = np.stack(
            [np.concatenate(tails), np.concatenate(heads)], axis=1
        )
        return edge_table_from_pairs(self.name, pairs, n)

    def expected_edges_for_nodes(self, n):
        m = self._params.get("m")
        if m is None:
            raise ValueError("generator not configured")
        if n <= m:
            return n * (n - 1) // 2
        return m + (n - m - 1) * m
