"""Bipartite many-to-many structure generation.

Edges between two *different* node types (e.g. Person –likes– Message)
need a bipartite SG.  This module implements the bipartite configuration
model (independent degree distributions per side, reconciled to a common
stub count) whose output feeds the bipartite variant of SBM-Part.
"""

from __future__ import annotations

import numpy as np

from .base import (
    EdgeChunkStream,
    PackedCodeEmitter,
    StructureGenerator,
    empty_emit,
)
from ..io.spool import dedup_first_occurrence, spill_array
from ..tables import EdgeTable

__all__ = ["BipartiteConfiguration"]

#: Floor for spill-run sizes in the out-of-core stub dedup.
_MIN_RUN_ROWS = 65_536


class _StubEmitter:
    """Picklable raw stub pairing over spilled offsets + shuffle.

    Stub ``j`` pairs tail ``searchsorted(tail_offsets, j) - 1`` with
    the head stub at shuffled position ``perm[j]``; head stubs are
    tiled modulo their base count to reconcile the two sides, so the
    head lookup is ``searchsorted(head_offsets, perm[j] % base) - 1``
    — elementwise in ``j``, hence chunk-pure.
    """

    def __init__(self, tail_offsets, head_offsets, perm, head_base):
        self.tail_offsets = tail_offsets
        self.head_offsets = head_offsets
        self.perm = perm
        self.head_base = int(head_base)

    def __call__(self, lo, hi):
        stub_ids = np.arange(lo, hi, dtype=np.int64)
        tails = (
            np.searchsorted(
                spill_array(self.tail_offsets), stub_ids, side="right"
            ) - 1
        ).astype(np.int64)
        shuffled = np.asarray(spill_array(self.perm)[lo:hi])
        if self.head_base == 0:
            heads = np.zeros(shuffled.size, dtype=np.int64)
        else:
            heads = (
                np.searchsorted(
                    spill_array(self.head_offsets),
                    shuffled % self.head_base, side="right",
                ) - 1
            ).astype(np.int64)
        return tails, heads


class BipartiteConfiguration(StructureGenerator):
    """Bipartite configuration model.

    Parameters (via ``initialize``)
    -------------------------------
    tail_distribution, head_distribution:
        :class:`~repro.stats.Distribution` over per-node degrees for each
        side (category ``i`` = degree ``i + offset``).
    tail_offset, head_offset:
        degree offsets (default 0).
    head_nodes:
        explicit head-side node count; when omitted it is sized so the
        head-side expected stub count matches the tail side.

    ``run(n)`` takes ``n`` as the tail-side node count.  The head stub
    total is reconciled to the tail total by repeating/truncating the
    sampled head degrees' stub array.
    """

    name = "bipartite_configuration"
    emission = "chunkable"

    def parameter_names(self):
        return {
            "tail_distribution",
            "head_distribution",
            "tail_offset",
            "head_offset",
            "head_nodes",
        }

    def _degree_layout(self, n, stream):
        """Sample both degree sequences (the shared random prefix of
        the serial and chunked paths)."""
        tail_dist = self._params.get("tail_distribution")
        head_dist = self._params.get("head_distribution")
        if tail_dist is None or head_dist is None:
            raise ValueError(
                "BipartiteConfiguration needs 'tail_distribution' and "
                "'head_distribution'"
            )
        t_off = int(self._params.get("tail_offset", 0))
        h_off = int(self._params.get("head_offset", 0))
        tail_deg = tail_dist.sample(
            stream.substream("tail"), np.arange(n, dtype=np.int64)
        ) + t_off
        total = int(tail_deg.sum())

        head_nodes = self._params.get("head_nodes")
        if head_nodes is None:
            head_mean = head_dist.mean() + h_off
            head_nodes = max(int(round(total / max(head_mean, 1e-9))), 1)
        head_nodes = int(head_nodes)
        head_deg = head_dist.sample(
            stream.substream("head"), np.arange(head_nodes, dtype=np.int64)
        ) + h_off
        return tail_deg, total, head_nodes, head_deg

    def _generate(self, n, stream):
        tail_deg, total, head_nodes, head_deg = self._degree_layout(
            n, stream
        )
        tail_stubs = np.repeat(np.arange(n, dtype=np.int64), tail_deg)
        head_stubs = np.repeat(
            np.arange(head_nodes, dtype=np.int64), head_deg
        )
        # Reconcile stub counts: tile the short side.
        if head_stubs.size == 0 and total > 0:
            head_stubs = np.zeros(total, dtype=np.int64)
        if head_stubs.size < total:
            reps = int(np.ceil(total / max(head_stubs.size, 1)))
            head_stubs = np.tile(head_stubs, reps)[:total]
        elif head_stubs.size > total:
            head_stubs = head_stubs[:total]

        if total:
            perm = stream.substream("shuffle").permutation(total)
            head_stubs = head_stubs[perm]
        table = EdgeTable(
            self.name,
            tail_stubs,
            head_stubs,
            num_tail_nodes=n,
            num_head_nodes=head_nodes,
            directed=True,
        )
        # Erase duplicate (tail, head) pairs.
        keys = table.tails * np.int64(head_nodes) + table.heads
        _, first = np.unique(keys, return_index=True)
        first.sort()
        return table.subsample(first)

    def _generate_chunked(self, n, stream, chunk_edges, spill):
        """Chunked stub pairing: offsets + shuffle spilled, dedup out
        of core.

        Instead of materialising both stub arrays, the raw pairing is
        re-derived per id-range chunk from the spilled degree-offset
        prefix sums and the spilled stub shuffle (the O(total)
        permutation is this generator's documented transient — drawn
        once, parked on disk, paged thereafter), then the duplicate
        erasure runs through spilled sorted runs exactly like the
        serial ``np.unique`` first-occurrence pass.
        """
        tail_deg, total, head_nodes, head_deg = self._degree_layout(
            n, stream
        )
        if total == 0:
            return EdgeChunkStream(
                self.name, 0, n, head_nodes, True, chunk_edges,
                empty_emit,
            )
        head_base = int(head_deg.sum())
        tail_offsets = spill("tail_offsets", np.concatenate([
            np.zeros(1, dtype=np.int64),
            np.cumsum(tail_deg, dtype=np.int64),
        ]))
        head_offsets = spill("head_offsets", np.concatenate([
            np.zeros(1, dtype=np.int64),
            np.cumsum(head_deg, dtype=np.int64),
        ]))
        perm = spill(
            "perm", stream.substream("shuffle").permutation(total)
        )
        emit = _StubEmitter(tail_offsets, head_offsets, perm, head_base)
        run_rows = max(int(chunk_edges), _MIN_RUN_ROWS)

        def blocks():
            for lo in range(0, total, run_rows):
                hi = min(lo + run_rows, total)
                tails, heads = emit(lo, hi)
                yield (
                    tails * np.int64(head_nodes) + heads,
                    np.arange(lo, hi, dtype=np.int64),
                )

        m, codes = dedup_first_occurrence(
            spill, "bipartite", blocks(), run_rows
        )
        return EdgeChunkStream(
            self.name, m, n, head_nodes, True, chunk_edges,
            PackedCodeEmitter(codes, head_nodes),
        )

    def expected_edges_for_nodes(self, n):
        tail_dist = self._params.get("tail_distribution")
        if tail_dist is None:
            raise ValueError("generator not configured")
        return int(n * (tail_dist.mean()
                        + int(self._params.get("tail_offset", 0))))
