"""Bipartite many-to-many structure generation.

Edges between two *different* node types (e.g. Person –likes– Message)
need a bipartite SG.  This module implements the bipartite configuration
model (independent degree distributions per side, reconciled to a common
stub count) whose output feeds the bipartite variant of SBM-Part.
"""

from __future__ import annotations

import numpy as np

from .base import StructureGenerator
from ..tables import EdgeTable

__all__ = ["BipartiteConfiguration"]


class BipartiteConfiguration(StructureGenerator):
    """Bipartite configuration model.

    Parameters (via ``initialize``)
    -------------------------------
    tail_distribution, head_distribution:
        :class:`~repro.stats.Distribution` over per-node degrees for each
        side (category ``i`` = degree ``i + offset``).
    tail_offset, head_offset:
        degree offsets (default 0).
    head_nodes:
        explicit head-side node count; when omitted it is sized so the
        head-side expected stub count matches the tail side.

    ``run(n)`` takes ``n`` as the tail-side node count.  The head stub
    total is reconciled to the tail total by repeating/truncating the
    sampled head degrees' stub array.
    """

    name = "bipartite_configuration"

    def parameter_names(self):
        return {
            "tail_distribution",
            "head_distribution",
            "tail_offset",
            "head_offset",
            "head_nodes",
        }

    def _generate(self, n, stream):
        tail_dist = self._params.get("tail_distribution")
        head_dist = self._params.get("head_distribution")
        if tail_dist is None or head_dist is None:
            raise ValueError(
                "BipartiteConfiguration needs 'tail_distribution' and "
                "'head_distribution'"
            )
        t_off = int(self._params.get("tail_offset", 0))
        h_off = int(self._params.get("head_offset", 0))
        tail_deg = tail_dist.sample(
            stream.substream("tail"), np.arange(n, dtype=np.int64)
        ) + t_off
        total = int(tail_deg.sum())

        head_nodes = self._params.get("head_nodes")
        if head_nodes is None:
            head_mean = head_dist.mean() + h_off
            head_nodes = max(int(round(total / max(head_mean, 1e-9))), 1)
        head_nodes = int(head_nodes)
        head_deg = head_dist.sample(
            stream.substream("head"), np.arange(head_nodes, dtype=np.int64)
        ) + h_off

        tail_stubs = np.repeat(np.arange(n, dtype=np.int64), tail_deg)
        head_stubs = np.repeat(
            np.arange(head_nodes, dtype=np.int64), head_deg
        )
        # Reconcile stub counts: tile the short side.
        if head_stubs.size == 0 and total > 0:
            head_stubs = np.zeros(total, dtype=np.int64)
        if head_stubs.size < total:
            reps = int(np.ceil(total / max(head_stubs.size, 1)))
            head_stubs = np.tile(head_stubs, reps)[:total]
        elif head_stubs.size > total:
            head_stubs = head_stubs[:total]

        if total:
            perm = stream.substream("shuffle").permutation(total)
            head_stubs = head_stubs[perm]
        table = EdgeTable(
            self.name,
            tail_stubs,
            head_stubs,
            num_tail_nodes=n,
            num_head_nodes=head_nodes,
            directed=True,
        )
        # Erase duplicate (tail, head) pairs.
        keys = table.tails * np.int64(head_nodes) + table.heads
        _, first = np.unique(keys, return_index=True)
        first.sort()
        return table.subsample(first)

    def expected_edges_for_nodes(self, n):
        tail_dist = self._params.get("tail_distribution")
        if tail_dist is None:
            raise ValueError("generator not configured")
        return int(n * (tail_dist.mean()
                        + int(self._params.get("tail_offset", 0))))
