"""Degree-sequence sampling shared by the configuration-model family.

LFR, BTER and Darwini all start from a sampled degree sequence (usually
power-law with an average-degree constraint).  This module centralises
that sampling plus the calibration tricks: solving for the power-law
cut-off that achieves a target mean degree, and drawing sequences with a
hard maximum degree.
"""

from __future__ import annotations

import numpy as np

from ..stats import PowerLaw

__all__ = [
    "powerlaw_degree_sequence",
    "solve_powerlaw_xmin",
    "expected_mean",
]


def expected_mean(gamma, xmin, xmax):
    """Mean of the discrete power law on ``[xmin, xmax]``."""
    return PowerLaw(gamma, xmin, xmax).mean_value()


def solve_powerlaw_xmin(gamma, target_mean, xmax):
    """Find the ``xmin`` whose power law on ``[xmin, xmax]`` has mean
    closest to ``target_mean``.

    The mean is increasing in ``xmin``, so a linear scan with early exit
    suffices (``xmax`` is small in all our configurations, e.g. 50).

    Raises
    ------
    ValueError
        when no cut-off can reach the target mean (target above ``xmax``).
    """
    if target_mean > xmax:
        raise ValueError(
            f"target mean degree {target_mean} exceeds max degree {xmax}"
        )
    best_xmin, best_err = 1, float("inf")
    for xmin in range(1, xmax + 1):
        err = abs(expected_mean(gamma, xmin, xmax) - target_mean)
        if err < best_err:
            best_xmin, best_err = xmin, err
        elif expected_mean(gamma, xmin, xmax) > target_mean:
            break
    return best_xmin


def powerlaw_degree_sequence(
    n, gamma, avg_degree, max_degree, stream, min_degree=None
):
    """Sample ``n`` degrees from a power law hitting a target average.

    This mirrors the LFR benchmark's degree model: exponent ``gamma``
    (paper evaluation uses the LFR default 2), maximum degree
    ``max_degree`` (50 in the paper), and average degree ``avg_degree``
    (20 in the paper) achieved by solving for the lower cut-off.

    Parameters
    ----------
    n:
        number of nodes.
    gamma:
        power-law exponent (>1).
    avg_degree:
        target mean degree.
    max_degree:
        hard cap on sampled degrees.
    stream:
        :class:`~repro.prng.RandomStream` for the draws.
    min_degree:
        lower cut-off; solved from ``avg_degree`` when omitted.

    Returns
    -------
    (n,) int64 array with an even sum.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if gamma <= 1:
        raise ValueError("gamma must exceed 1")
    if max_degree >= n:
        max_degree = n - 1
    if max_degree < 1:
        raise ValueError("max_degree must be >= 1 (and n >= 2)")
    if min_degree is None:
        min_degree = solve_powerlaw_xmin(gamma, avg_degree, max_degree)
    dist = PowerLaw(gamma, min_degree, max_degree)
    degrees = dist.sample_values(stream, np.arange(n, dtype=np.int64))
    if int(degrees.sum()) % 2 == 1:
        bump = int(stream.randint(np.int64(n), 0, n))
        degrees[bump] += 1
        if degrees[bump] > max_degree:
            degrees[bump] -= 2
    return degrees
