"""Declarative validation of generated property graphs.

Benchmark datasets come with contracts: cardinalities must hold
exactly, date orderings must never be violated, distributions must be
within tolerance of their specification.  This module provides a small
validator framework: each :class:`Check` inspects a
:class:`~repro.core.result.PropertyGraph` and returns a
:class:`CheckResult`; :func:`validate` runs a list of checks and
aggregates a report.

The built-in checks cover every contract the running example states,
so ``validate(graph, standard_checks(schema))`` is a one-call
post-generation audit.  (The scenario layer wraps these same classes
into *graded* pass/warn/fail reports — see
:mod:`repro.scenarios.report`.)

Examples
--------
>>> from repro.core import GraphGenerator
>>> from repro.datasets import social_network_schema
>>> from repro.validation import standard_checks, validate
>>> schema = social_network_schema(num_countries=8)
>>> graph = GraphGenerator(schema, {"Person": 400}, seed=2).generate()
>>> report = validate(graph, standard_checks(schema))
>>> report.passed
True
>>> print(str(report).splitlines()[-1])
6/6 checks passed
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Check",
    "CheckResult",
    "ValidationReport",
    "CardinalityCheck",
    "DateOrderingCheck",
    "MarginalDistributionCheck",
    "JointDistributionCheck",
    "DegreeDistributionCheck",
    "UniquenessCheck",
    "validate",
]


@dataclass
class CheckResult:
    """Outcome of one check.

    ``metric`` carries the measured quantity (violation count, total
    variation, KS distance, mean degree, ...) so callers can grade or
    trend results instead of only branching on ``passed``.

    >>> print(CheckResult("cardinality[creates]", True,
    ...                   "0 violations"))
    [ok] cardinality[creates] (0 violations)
    >>> print(CheckResult("unique[Person.handle]", False,
    ...                   "3 duplicate values", metric=3.0))
    [FAIL] unique[Person.handle] (3 duplicate values)
    """

    name: str
    passed: bool
    detail: str = ""
    metric: float | None = None

    def __str__(self):
        status = "ok" if self.passed else "FAIL"
        suffix = f" ({self.detail})" if self.detail else ""
        return f"[{status}] {self.name}{suffix}"


@dataclass
class ValidationReport:
    """Aggregated results of a validation run.

    >>> report = ValidationReport([
    ...     CheckResult("a", True), CheckResult("b", False, "bad"),
    ... ])
    >>> report.passed
    False
    >>> [r.name for r in report.failures]
    ['b']
    >>> print(report)
    [ok] a
    [FAIL] b (bad)
    1/2 checks passed
    """

    results: list = field(default_factory=list)

    @property
    def passed(self):
        return all(result.passed for result in self.results)

    @property
    def failures(self):
        return [r for r in self.results if not r.passed]

    def __str__(self):
        lines = [str(result) for result in self.results]
        lines.append(
            f"{len(self.results) - len(self.failures)}/"
            f"{len(self.results)} checks passed"
        )
        return "\n".join(lines)


class Check:
    """Base class: subclasses implement :meth:`run`.

    A check is stateless and reusable: construct it once with its
    target (edge/property names, thresholds) and run it against any
    number of graphs.  Custom checks only need ``name`` and ``run``:

    >>> class NonEmpty(Check):
    ...     name = "non_empty[knows]"
    ...     def run(self, graph):
    ...         ok = graph.num_edges("knows") > 0
    ...         return CheckResult(self.name, ok)
    """

    name = "abstract"

    def run(self, graph):
        """Return a :class:`CheckResult` for ``graph``."""
        raise NotImplementedError


class CardinalityCheck(Check):
    """Verify the declared cardinality of an edge type holds exactly.

    1→* : every head node has exactly one incident edge;
    1→1 : both sides are perfect matchings.

    Examples
    --------
    >>> from repro.core import GraphGenerator
    >>> from repro.datasets import social_network_schema
    >>> schema = social_network_schema(num_countries=8)
    >>> graph = GraphGenerator(schema, {"Person": 200},
    ...                        seed=2).generate()
    >>> print(CardinalityCheck("creates").run(graph))
    [ok] cardinality[creates] (0 head nodes violate exactly-one-edge)
    """

    def __init__(self, edge_name):
        self.edge_name = edge_name
        self.name = f"cardinality[{edge_name}]"

    def run(self, graph):
        from ..core.schema import Cardinality

        edge = graph.schema.edge_type(self.edge_name)
        table = graph.edges(self.edge_name)
        if edge.cardinality is Cardinality.MANY_TO_MANY:
            return CheckResult(
                self.name, True, "*..* imposes no constraint"
            )
        head_counts = np.bincount(
            table.heads, minlength=graph.num_nodes(edge.head_type)
        )
        if edge.cardinality is Cardinality.ONE_TO_MANY:
            bad = int((head_counts != 1).sum())
            return CheckResult(
                self.name,
                bad == 0,
                f"{bad} head nodes violate exactly-one-edge",
                metric=float(bad),
            )
        # ONE_TO_ONE
        tail_counts = np.bincount(
            table.tails, minlength=graph.num_nodes(edge.tail_type)
        )
        bad = int((head_counts != 1).sum() + (tail_counts != 1).sum())
        return CheckResult(
            self.name,
            bad == 0,
            f"{bad} endpoint violations of the bijection",
            metric=float(bad),
        )


class DateOrderingCheck(Check):
    """Verify an edge date property exceeds its endpoint dates.

    Parameters
    ----------
    edge_name, edge_property:
        the edge date column.
    tail_property, head_property:
        endpoint date columns (either may be None to skip that side).

    Examples
    --------
    >>> check = DateOrderingCheck(
    ...     "knows", "creationDate",
    ...     tail_property="creationDate",
    ...     head_property="creationDate")
    >>> check.name
    'date_ordering[knows.creationDate]'
    """

    def __init__(self, edge_name, edge_property,
                 tail_property=None, head_property=None):
        self.edge_name = edge_name
        self.edge_property = edge_property
        self.tail_property = tail_property
        self.head_property = head_property
        self.name = f"date_ordering[{edge_name}.{edge_property}]"

    def run(self, graph):
        edge = graph.schema.edge_type(self.edge_name)
        table = graph.edges(self.edge_name)
        values = graph.edge_property(
            self.edge_name, self.edge_property
        ).values
        bound = np.full(len(table), -np.inf)
        if self.tail_property:
            tail_dates = graph.node_property(
                edge.tail_type, self.tail_property
            ).values
            bound = np.maximum(bound, tail_dates[table.tails])
        if self.head_property:
            head_dates = graph.node_property(
                edge.head_type, self.head_property
            ).values
            bound = np.maximum(bound, head_dates[table.heads])
        bad = int((values <= bound).sum())
        return CheckResult(
            self.name,
            bad == 0,
            f"{bad} edges violate the strict ordering",
            metric=float(bad),
        )


class MarginalDistributionCheck(Check):
    """Verify a property's value frequencies match a specification.

    Compares the observed frequency vector against expected weights
    with a total-variation tolerance.  Values outside the declared
    domain fail outright.

    Examples
    --------
    >>> check = MarginalDistributionCheck(
    ...     "Person", "sex", ["female", "male"], [0.5, 0.5],
    ...     tolerance=0.1)
    >>> check.name, [round(float(w), 2) for w in check.weights]
    ('marginal[Person.sex]', [0.5, 0.5])
    """

    def __init__(self, type_name, prop_name, values, weights,
                 tolerance=0.05):
        self.type_name = type_name
        self.prop_name = prop_name
        self.values = list(values)
        weights = np.asarray(weights, dtype=np.float64)
        self.weights = weights / weights.sum()
        self.tolerance = tolerance
        self.name = f"marginal[{type_name}.{prop_name}]"

    def run(self, graph):
        table = graph.node_property(self.type_name, self.prop_name)
        observed = np.zeros(len(self.values))
        position = {v: i for i, v in enumerate(self.values)}
        unknown = 0
        for value in table.values:
            if value in position:
                observed[position[value]] += 1
            else:
                unknown += 1
        if unknown:
            return CheckResult(
                self.name, False,
                f"{unknown} values outside the declared domain",
            )
        observed = observed / observed.sum()
        tv = 0.5 * float(np.abs(observed - self.weights).sum())
        return CheckResult(
            self.name,
            tv <= self.tolerance,
            f"total variation {tv:.4f} (tolerance {self.tolerance})",
            metric=tv,
        )


class JointDistributionCheck(Check):
    """Verify the realised property-structure joint is close to the
    requested one (KS over the sorted pair CDFs).

    Edge types without a match result (uncorrelated, random matching)
    pass trivially.

    Examples
    --------
    >>> JointDistributionCheck("knows", max_ks=0.5).name
    'joint[knows]'
    """

    def __init__(self, edge_name, max_ks=0.5):
        self.edge_name = edge_name
        self.max_ks = max_ks
        self.name = f"joint[{edge_name}]"

    def run(self, graph):
        from ..stats import JointDistribution, compare_joints

        match = graph.match_results.get(self.edge_name)
        if match is None:
            return CheckResult(
                self.name, True, "edge is uncorrelated (random match)"
            )
        requested = JointDistribution(match.target)
        observed = graph.observed_joint(self.edge_name)
        ks = compare_joints(requested, observed).ks
        return CheckResult(
            self.name,
            ks <= self.max_ks,
            f"KS {ks:.4f} (threshold {self.max_ks})",
            metric=ks,
        )


class DegreeDistributionCheck(Check):
    """Verify degree statistics of an edge type are in expected bands.

    Any of ``min_mean`` / ``max_mean`` / ``max_degree`` may be None to
    skip that bound; the result's ``metric`` is the observed mean
    degree (out-degree for bipartite edge types).

    Examples
    --------
    >>> DegreeDistributionCheck("knows", min_mean=5,
    ...                         max_degree=50).name
    'degrees[knows]'
    """

    def __init__(self, edge_name, min_mean=None, max_mean=None,
                 max_degree=None):
        self.edge_name = edge_name
        self.min_mean = min_mean
        self.max_mean = max_mean
        self.max_degree = max_degree
        self.name = f"degrees[{edge_name}]"

    def run(self, graph):
        table = graph.edges(self.edge_name)
        degrees = (
            table.out_degrees() if table.is_bipartite
            else table.degrees()
        )
        mean = float(degrees.mean()) if degrees.size else 0.0
        peak = int(degrees.max()) if degrees.size else 0
        problems = []
        if self.min_mean is not None and mean < self.min_mean:
            problems.append(f"mean {mean:.2f} < {self.min_mean}")
        if self.max_mean is not None and mean > self.max_mean:
            problems.append(f"mean {mean:.2f} > {self.max_mean}")
        if self.max_degree is not None and peak > self.max_degree:
            problems.append(f"max {peak} > {self.max_degree}")
        return CheckResult(
            self.name,
            not problems,
            "; ".join(problems) or f"mean {mean:.2f}, max {peak}",
            metric=mean,
        )


class UniquenessCheck(Check):
    """Verify a property column holds unique values (surrogate keys).

    Examples
    --------
    A hand-assembled graph with a duplicate key:

    >>> from repro.core.result import PropertyGraph
    >>> from repro.core.schema import NodeType, PropertyDef, Schema
    >>> from repro.tables import PropertyTable
    >>> schema = Schema(node_types=[
    ...     NodeType("U", properties=[PropertyDef("k", "string")])])
    >>> graph = PropertyGraph(schema, seed=0)
    >>> graph.node_counts["U"] = 3
    >>> graph.node_properties["U.k"] = PropertyTable(
    ...     "U.k", ["a", "b", "a"])
    >>> print(UniquenessCheck("U", "k").run(graph))
    [FAIL] unique[U.k] (1 duplicate values)
    """

    def __init__(self, type_name, prop_name):
        self.type_name = type_name
        self.prop_name = prop_name
        self.name = f"unique[{type_name}.{prop_name}]"

    def run(self, graph):
        values = graph.node_property(
            self.type_name, self.prop_name
        ).values
        duplicates = len(values) - len(set(values))
        return CheckResult(
            self.name,
            duplicates == 0,
            f"{duplicates} duplicate values",
            metric=float(duplicates),
        )


def validate(graph, checks):
    """Run ``checks`` against ``graph`` and return the report.

    Checks run in order; a check that raises aborts the run (checks
    are audits of *generated* data — an exception means the graph is
    structurally broken, not merely off-spec).

    >>> report = validate(None, [])
    >>> report.passed, len(report.results)
    (True, 0)
    """
    report = ValidationReport()
    for check in checks:
        report.results.append(check.run(graph))
    return report
