"""Standard check sets derived automatically from a schema.

``standard_checks(schema)`` inspects the declarations and produces the
audit a benchmark designer would want by default:

* a cardinality check per non-*..* edge type;
* a date-ordering check per ``after_dependency`` edge property;
* a marginal check per declared ``categorical`` property with weights;
* a joint check per correlated edge type.
"""

from __future__ import annotations

from .checks import (
    CardinalityCheck,
    DateOrderingCheck,
    JointDistributionCheck,
    MarginalDistributionCheck,
)

__all__ = ["standard_checks"]


def standard_checks(schema, joint_max_ks=0.6, marginal_tolerance=0.05):
    """Derive the default audit from schema declarations.

    Parameters
    ----------
    schema:
        the :class:`~repro.core.schema.Schema` whose declarations
        (cardinalities, ``after_dependency`` properties, weighted
        ``categorical`` properties, correlations) imply the checks.
    joint_max_ks, marginal_tolerance:
        thresholds handed to the generated
        :class:`~repro.validation.JointDistributionCheck` /
        :class:`~repro.validation.MarginalDistributionCheck`.

    Examples
    --------
    The running example implies six checks:

    >>> from repro.datasets import social_network_schema
    >>> checks = standard_checks(social_network_schema())
    >>> [c.name for c in checks]      # doctest: +NORMALIZE_WHITESPACE
    ['joint[knows]', 'date_ordering[knows.creationDate]',
     'cardinality[creates]', 'date_ordering[creates.creationDate]',
     'marginal[Person.country]', 'marginal[Person.sex]']
    """
    from ..core.schema import Cardinality

    checks = []

    for edge in schema.edge_types.values():
        if edge.cardinality is not Cardinality.MANY_TO_MANY:
            checks.append(CardinalityCheck(edge.name))
        if edge.correlation is not None \
                and edge.correlation.head_property is None:
            checks.append(
                JointDistributionCheck(edge.name, max_ks=joint_max_ks)
            )
        for prop in edge.properties:
            if prop.generator is None:
                continue
            if prop.generator.name != "after_dependency":
                continue
            tail_prop = None
            head_prop = None
            for dep in prop.depends_on:
                if dep.startswith("tail."):
                    tail_prop = dep[len("tail."):]
                elif dep.startswith("head."):
                    head_prop = dep[len("head."):]
            if tail_prop or head_prop:
                checks.append(
                    DateOrderingCheck(
                        edge.name,
                        prop.name,
                        tail_property=tail_prop,
                        head_property=head_prop,
                    )
                )

    for node in schema.node_types.values():
        for prop in node.properties:
            if prop.generator is None:
                continue
            if prop.generator.name != "categorical":
                continue
            params = prop.generator.params
            if "values" in params and params.get("weights") is not None:
                checks.append(
                    MarginalDistributionCheck(
                        node.name,
                        prop.name,
                        params["values"],
                        params["weights"],
                        tolerance=marginal_tolerance,
                    )
                )
    return checks
