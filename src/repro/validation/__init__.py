"""Post-generation validation of property graph contracts."""

from .checks import (
    CardinalityCheck,
    Check,
    CheckResult,
    DateOrderingCheck,
    DegreeDistributionCheck,
    JointDistributionCheck,
    MarginalDistributionCheck,
    UniquenessCheck,
    ValidationReport,
    validate,
)
from .standard import standard_checks

__all__ = [
    "CardinalityCheck",
    "Check",
    "CheckResult",
    "DateOrderingCheck",
    "DegreeDistributionCheck",
    "JointDistributionCheck",
    "MarginalDistributionCheck",
    "UniquenessCheck",
    "ValidationReport",
    "standard_checks",
    "validate",
]
