"""Command-line interface.

The catalog-driven entry point is the ``scenario`` subcommand — run a
named workload from the zoo (or any recipe file) end-to-end: generate,
stream-export, and emit a graded validation report::

    datasynth scenario list
    datasynth scenario describe social_network
    datasynth scenario run social_network --workers 2 --out out/
    datasynth scenario validate lfr_benchmark --scale Node=1000

``datasynth generate schema.dsl --scale Person=10000 --out data/``
parses a DSL schema, generates the graph, and streams it to disk as it
is generated (chunked, memory-bounded export; see docs/io.md).  Add
``--workers N`` to run the task DAG shard-parallel on a process pool,
``--chunk-size N`` / ``--compress`` to tune the export — output bytes
are identical for every combination.  A further subcommand runs the
paper's evaluation protocol for quick inspection::

    datasynth protocol --kind lfr --size 10000 --k 16
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def _worker_count(text):
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"--workers must be >= 1, got {value}"
        )
    return value


def _chunk_size(text):
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"--chunk-size must be >= 1, got {value}"
        )
    return value


def _shard_rows(text):
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"--shard-rows must be >= 1, got {value}"
        )
    return value


def _memory_budget(text):
    from .core import parse_memory_budget

    try:
        parse_memory_budget(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return text


def _add_sharding_args(cmd):
    cmd.add_argument(
        "--shard-rows", type=_shard_rows, default=None, metavar="N",
        help="out-of-core mode: run the whole pipeline per N-row "
             "id-range shard with disk-spooled tables (byte-identical "
             "output, peak memory bounded by the shard size; see "
             "docs/scaling.md)",
    )
    cmd.add_argument(
        "--memory-budget", type=_memory_budget, default=None,
        metavar="SIZE",
        help="out-of-core mode with the shard size derived from a "
             "memory budget, e.g. 512MB or 2G",
    )
    cmd.add_argument(
        "--backend", choices=("thread", "process"), default="thread",
        help="worker backend for out-of-core mode: 'thread' shares "
             "the GIL (low overhead, good for spool-IO-bound runs), "
             "'process' runs shards and export formatting on a "
             "fork-server pool for CPU-bound pipelines (output is "
             "byte-identical either way; see docs/scaling.md)",
    )
    cmd.add_argument(
        "--spool-dir", default=None, metavar="DIR",
        help="out-of-core spool location (default: a private "
             "temporary directory, removed on failure).  An explicit "
             "directory is preserved when a stage fails, which is "
             "what --resume needs",
    )
    cmd.add_argument(
        "--resume", default=None, metavar="DIR",
        help="resume an interrupted out-of-core run from the "
             "checkpoint.json ledger in DIR: the run fingerprint is "
             "validated, verified shards are skipped, and the export "
             "is re-emitted byte-identical to an uninterrupted run "
             "(see docs/robustness.md)",
    )
    cmd.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="per-shard retry budget for out-of-core mode: a failed "
             "or killed worker shard is re-run (respawning the pool "
             "if it broke) with exponential backoff before the run "
             "aborts",
    )
    cmd.add_argument(
        "--inject-faults", default=None, metavar="SPECS",
        help="deterministic fault injection for chaos testing, e.g. "
             "'shard:3:crash' or 'export:2:ioerror,shard:5:slow=2.0' "
             "(also honours the REPRO_FAULTS environment variable; "
             "see docs/robustness.md for the grammar)",
    )


def build_parser():
    parser = argparse.ArgumentParser(
        prog="datasynth",
        description=(
            "Property graph generator for benchmarking "
            "(reproduction of Prat-Pérez et al., 2017)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser(
        "generate", help="generate a property graph from a DSL schema"
    )
    generate.add_argument("schema", help="path to the .dsl schema file")
    generate.add_argument(
        "--scale",
        action="append",
        default=[],
        metavar="TYPE=COUNT",
        help="scale anchors (repeatable); override the DSL scale block",
    )
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--workers", type=_worker_count, default=1, metavar="N",
        help="process-pool size for shard-parallel generation "
             "(1 = serial; output is bit-identical for any N)",
    )
    generate.add_argument(
        "--out", default="datasynth-out", help="output directory"
    )
    generate.add_argument(
        "--format",
        choices=("csv", "jsonl", "edgelist", "graphml"),
        default="csv",
    )
    generate.add_argument(
        "--chunk-size", type=_chunk_size, default=None, metavar="N",
        help="rows per export chunk (streamed, memory-bounded export; "
             "default 65536 — output bytes are identical for any N)",
    )
    generate.add_argument(
        "--compress", action="store_true",
        help="gzip the exported files (deterministic .gz bytes)",
    )
    _add_sharding_args(generate)

    protocol = sub.add_parser(
        "protocol",
        help="run the Figure-3/4 matching-quality protocol once",
    )
    protocol.add_argument(
        "--kind", choices=("lfr", "rmat"), default="lfr"
    )
    protocol.add_argument(
        "--size",
        type=int,
        default=10_000,
        help="node count (lfr) or scale exponent (rmat)",
    )
    protocol.add_argument("--k", type=int, default=16)
    protocol.add_argument("--seed", type=int, default=0)
    protocol.add_argument(
        "--matcher",
        choices=("sbm_part", "random", "ldg", "greedy"),
        default="sbm_part",
    )
    protocol.add_argument(
        "--points", type=int, default=20,
        help="CDF sample points to print",
    )

    report = sub.add_parser(
        "report",
        help="run the experiment sweep and write a markdown report",
    )
    report.add_argument("--out", default="report.md")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument(
        "--quick", action="store_true",
        help="skip Figure 4 and the ablation (faster)",
    )

    validate = sub.add_parser(
        "validate",
        help="generate the running example and audit its contracts",
    )
    validate.add_argument("--persons", type=int, default=2_000)
    validate.add_argument("--seed", type=int, default=0)
    validate.add_argument("--workers", type=_worker_count, default=1, metavar="N")

    analyze = sub.add_parser(
        "analyze",
        help="print the structural profile of an edge-list file",
    )
    analyze.add_argument("path", help="edge-list file (tail head rows)")
    analyze.add_argument(
        "--no-clustering", action="store_true",
        help="skip the O(m * d) clustering computation",
    )

    example = sub.add_parser(
        "example",
        help="generate the running-example social network",
    )
    example.add_argument("--persons", type=int, default=10_000)
    example.add_argument("--seed", type=int, default=0)
    example.add_argument("--workers", type=_worker_count, default=1, metavar="N")
    example.add_argument("--out", default=None)

    scenario = sub.add_parser(
        "scenario",
        help="run declarative scenario recipes (the zoo) end-to-end",
        description=(
            "Declarative workloads: a recipe (YAML/JSON) names the "
            "schema, scale, export settings and validation "
            "thresholds; `run` generates, streams the export, and "
            "emits a graded pass/warn/fail report (text + JSON). "
            "See docs/scenarios.md."
        ),
    )
    scen_sub = scenario.add_subparsers(dest="scenario_command",
                                       required=True)

    scen_sub.add_parser(
        "list", help="list the built-in scenario zoo"
    )

    describe = scen_sub.add_parser(
        "describe",
        help="show a recipe's schema, knobs, and the recipe-key "
             "reference",
    )
    describe.add_argument(
        "name", help="zoo scenario name or recipe file path"
    )

    def _add_run_args(cmd, with_export):
        cmd.add_argument(
            "name", help="zoo scenario name or recipe file path"
        )
        cmd.add_argument(
            "--scale", action="append", default=[],
            metavar="TYPE=COUNT",
            help="override the recipe's scale anchors (repeatable)",
        )
        cmd.add_argument(
            "--seed", type=int, default=None,
            help="override the recipe's seed",
        )
        cmd.add_argument(
            "--workers", type=_worker_count, default=1, metavar="N",
            help="process-pool size (output is bit-identical for "
                 "any N)",
        )
        cmd.add_argument(
            "--report-json", default=None, metavar="PATH",
            help="write the graded report as JSON to PATH",
        )
        cmd.add_argument(
            "--plant-report", action="store_true",
            help="run the baseline subgraph matcher over every "
                 "planted template and print per-plant recall "
                 "(exits 1 unless recall is 1.0; see "
                 "docs/planting.md)",
        )
        _add_sharding_args(cmd)
        if with_export:
            cmd.add_argument(
                "--out", default=None,
                help="export directory (streams during generation; "
                     "a validation_report.json lands next to the "
                     "tables)",
            )
            cmd.add_argument(
                "--format", default=None,
                choices=("csv", "jsonl", "edgelist", "graphml"),
                help="override the recipe's export formats",
            )
            cmd.add_argument(
                "--chunk-size", type=_chunk_size, default=None,
                metavar="N",
            )
            cmd.add_argument("--compress", action="store_true")
            cmd.add_argument(
                "--no-validate", action="store_true",
                help="skip the graded validation audit",
            )

    run = scen_sub.add_parser(
        "run",
        help="generate + export + graded validation report",
    )
    _add_run_args(run, with_export=True)

    validate_cmd = scen_sub.add_parser(
        "validate",
        help="generate (no export) and emit the graded report",
    )
    _add_run_args(validate_cmd, with_export=False)

    serve = sub.add_parser(
        "serve",
        help="serve a recipe as a random-access virtual graph over "
             "HTTP",
        description=(
            "Boot an HTTP server answering paginated node, property, "
            "edge, neighbourhood and existence queries directly from "
            "a recipe — no materialised graph.  Responses reuse the "
            "export formatters, so a CSV page equals the matching "
            "line range of a `repro generate` export.  See "
            "docs/serving.md."
        ),
    )
    serve.add_argument(
        "name", help="zoo scenario name or recipe file path"
    )
    serve.add_argument(
        "--scale", action="append", default=[], metavar="TYPE=COUNT",
        help="override the recipe's scale anchors (repeatable)",
    )
    serve.add_argument(
        "--seed", type=int, default=None,
        help="override the recipe's seed",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8080,
        help="listen port (0 binds an ephemeral port)",
    )
    serve.add_argument(
        "--chunk-rows", type=int, default=65_536, metavar="N",
        help="page/scan granularity — the memory unit of every query",
    )
    serve.add_argument(
        "--spool-dir", default=None, metavar="DIR",
        help="where matching maps and spooled tables land "
             "(default: a private temporary directory)",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=30.0, metavar="SECONDS",
        help="per-connection socket timeout — a stalled client is "
             "disconnected instead of pinning a handler thread",
    )
    serve.add_argument(
        "--verbose", action="store_true",
        help="log each request to stderr",
    )
    return parser


def _parse_scale(entries):
    scale = {}
    for entry in entries:
        if "=" not in entry:
            raise SystemExit(
                f"--scale expects TYPE=COUNT, got {entry!r}"
            )
        key, _, count = entry.partition("=")
        scale[key.strip()] = int(count)
    return scale


def _cmd_generate(args):
    from .core import GraphGenerator
    from .core.dsl import load_schema
    from .io import DEFAULT_CHUNK_SIZE, make_sink

    with open(args.schema) as handle:
        source = handle.read()
    schema, dsl_scale, graph_name = load_schema(source)
    scale = dict(dsl_scale)
    scale.update(_parse_scale(args.scale))
    if not scale:
        raise SystemExit(
            "no scale given: add a DSL scale block or --scale TYPE=COUNT"
        )
    sharded = (args.shard_rows is not None
               or args.memory_budget is not None
               or args.resume is not None)
    if sharded:
        from .core import ShardedExecutor

        executor = ShardedExecutor(
            schema, scale, seed=args.seed,
            shard_rows=args.shard_rows,
            memory_budget=args.memory_budget,
            workers=args.workers,
            backend=args.backend,
            spool_dir=args.resume or args.spool_dir,
            resume=args.resume is not None,
            retries=args.retries,
            faults=args.inject_faults,
        )
        # Cap export chunks at the shard size so the sink stays within
        # the memory budget (bytes are identical for any chunk size).
        sink = make_sink(
            args.format,
            args.out,
            chunk_size=min(
                args.chunk_size or DEFAULT_CHUNK_SIZE,
                executor.shard_rows,
            ),
            compress=args.compress,
        )
        graph = executor.run(sink=sink)
        summary = graph.summary()
        if executor.spool_dir is None:
            graph.cleanup()
    else:
        sink = make_sink(
            args.format,
            args.out,
            chunk_size=args.chunk_size or DEFAULT_CHUNK_SIZE,
            compress=args.compress,
        )
        graph = GraphGenerator(
            schema, scale, seed=args.seed, workers=args.workers
        ).generate(sink=sink)
        summary = graph.summary()
    print(f"generated graph {graph_name!r}: {summary}")
    for path in sink.written:
        print(f"  wrote {path}")
    return 0


def _cmd_protocol(args):
    from .experiments import run_protocol

    result = run_protocol(
        args.kind, args.size, args.k,
        seed=args.seed, matcher=args.matcher,
    )
    print(f"{result.label} matcher={args.matcher}")
    for key, value in result.row().items():
        print(f"  {key}: {value}")
    idx, expected, observed = result.comparison.series(args.points)
    print("  pair-rank expected-cdf observed-cdf")
    for i, e, o in zip(idx, expected, observed):
        print(f"  {int(i):9d} {e:12.4f} {o:12.4f}")
    return 0


def _cmd_example(args):
    from .core import GraphGenerator
    from .datasets import social_network_schema
    from .io import export_graph_csv

    schema = social_network_schema(num_countries=16)
    graph = GraphGenerator(
        schema, {"Person": args.persons},
        seed=args.seed, workers=args.workers,
    ).generate()
    print(f"running example: {graph.summary()}")
    match = graph.match_results.get("knows")
    if match is not None:
        print(f"  knows matching Frobenius error: "
              f"{match.frobenius_error:.1f}")
    if args.out:
        for path in export_graph_csv(graph, args.out):
            print(f"  wrote {path}")
    return 0


def _cmd_analyze(args):
    from .graphstats import structural_summary
    from .io import read_edgelist

    table = read_edgelist(args.path)
    summary = structural_summary(
        table, clustering=not args.no_clustering
    )
    print(f"structural profile of {args.path}:")
    for key, value in summary.items():
        if isinstance(value, float):
            value = round(value, 4)
        print(f"  {key}: {value}")
    return 0


def _cmd_report(args):
    from .experiments import generate_report

    text = generate_report(
        seed=args.seed,
        include_figure4=not args.quick,
        include_ablation=not args.quick,
    )
    with open(args.out, "w") as handle:
        handle.write(text)
    print(f"wrote {args.out}")
    return 0


def _cmd_validate(args):
    from .core import GraphGenerator
    from .datasets import social_network_schema
    from .validation import standard_checks, validate

    schema = social_network_schema(num_countries=12)
    graph = GraphGenerator(
        schema, {"Person": args.persons},
        seed=args.seed, workers=args.workers,
    ).generate()
    report = validate(graph, standard_checks(schema))
    print(report)
    return 0 if report.passed else 1


def _load_scenario_spec(name):
    """Resolve a CLI scenario argument: zoo name or recipe path."""
    import os

    from .scenarios import load_recipe, load_zoo

    if os.path.sep in name or name.endswith(
        (".yaml", ".yml", ".json")
    ):
        return load_recipe(name)
    return load_zoo(name)


def _cmd_scenario_list(args):
    from .scenarios import zoo_specs

    rows = [
        (
            name,
            ", ".join(f"{k}={v}" for k, v in spec.scale.items()),
            spec.description,
        )
        for name, spec in zoo_specs()
    ]
    name_w = max(len(r[0]) for r in rows)
    scale_w = max(len(r[1]) for r in rows)
    print(f"{'scenario':<{name_w}}  {'scale':<{scale_w}}  description")
    for name, scale, description in rows:
        print(f"{name:<{name_w}}  {scale:<{scale_w}}  {description}")
    return 0


def _cmd_scenario_describe(args):
    from .scenarios import recipe_reference_rows

    spec = _load_scenario_spec(args.name)
    print(f"scenario {spec.name!r}: {spec.description}")
    if spec.tags:
        print(f"  tags: {', '.join(spec.tags)}")
    print(f"  seed: {spec.seed}")
    print(f"  scale: "
          + ", ".join(f"{k}={v}" for k, v in spec.scale.items()))
    for type_name, node in spec.nodes.items():
        props = (node or {}).get("properties", {})
        print(f"  node {type_name} ({len(props)} properties)")
        for prop, body in props.items():
            deps = body.get("depends_on") or []
            suffix = f" depends({', '.join(deps)})" if deps else ""
            print(f"    {prop}: {body.get('dtype', 'string')} = "
                  f"{body.get('generator')}(...){suffix}")
    for edge_name, edge in spec.edges.items():
        arrow = "->" if edge.get("directed") else "--"
        corr = edge.get("correlation") or {}
        extra = (
            f", correlated on {corr['property']!r}"
            if corr.get("property") else ""
        )
        print(
            f"  edge {edge_name}: {edge['tail']} {arrow} "
            f"{edge['head']} "
            f"[{edge.get('cardinality', '*..*')}] via "
            f"{edge['structure']['generator']}{extra}"
        )
    print(f"  export: {', '.join(spec.export_formats)}")
    print()
    print("recipe keys (from repro.scenarios.spec.RECIPE_FIELDS; "
          "full reference: docs/scenarios.md):")
    for path, type_, required, default, _desc in \
            recipe_reference_rows():
        marks = []
        if required == "yes":
            marks.append("required")
        if default and default != "—":
            marks.append(f"default {default}")
        suffix = f"  ({'; '.join(marks)})" if marks else ""
        print(f"  {path:<46} {type_}{suffix}")
    return 0


def _cmd_scenario_run(args, export=True):
    import os

    from .scenarios import compile_scenario, run_scenario

    spec = _load_scenario_spec(args.name)
    compiled = compile_scenario(
        spec, scale=_parse_scale(args.scale), seed=args.seed
    )
    out_dir = getattr(args, "out", None) if export else None
    formats = None
    if export and args.format:
        formats = [args.format]
    validate = not (export and args.no_validate)
    graph, report, written = run_scenario(
        compiled,
        workers=args.workers,
        out_dir=out_dir,
        formats=formats,
        chunk_size=getattr(args, "chunk_size", None),
        compress=(getattr(args, "compress", False) or None),
        validate=validate,
        shard_rows=args.shard_rows,
        memory_budget=args.memory_budget,
        backend=args.backend,
        spool_dir=args.resume or args.spool_dir,
        resume=args.resume is not None,
        retries=args.retries,
        faults=args.inject_faults,
    )
    summary = graph.summary()
    plant_report = None
    if getattr(args, "plant_report", False):
        plan = getattr(graph, "plan", None)
        if plan is None:
            print(
                f"scenario {compiled.name!r} declares no plants; "
                "--plant-report has nothing to verify"
            )
        else:
            from .graphstats import verify_plants

            plant_report = verify_plants(graph.materialize(), plan)
    if hasattr(graph, "cleanup") and not (args.resume or args.spool_dir):
        # An explicitly named spool is the user's to keep (it is what
        # --resume reads); owned temporaries are removed.
        graph.cleanup()
    print(f"scenario {compiled.name!r}: {summary}")
    for path in written:
        print(f"  wrote {path}")
    if plant_report is not None:
        print(
            f"plant report: {plant_report['recovered']}/"
            f"{plant_report['instances']} instances recovered "
            f"(recall {plant_report['recall']:.3f})"
        )
        for name, row in plant_report["plants"].items():
            print(
                f"  plant {name} [{row['edge']}]: "
                f"{row['recovered']}/{row['instances']} recovered, "
                f"{row['matches']} matches, "
                f"{row['rows_per_sec']:.0f} rows/s"
            )
    if report is None:
        return (
            0 if plant_report is None
            else int(plant_report["recall"] < 1.0)
        )
    print(report)
    report_paths = []
    if args.report_json:
        report_paths.append(args.report_json)
    if out_dir is not None:
        report_paths.append(
            os.path.join(out_dir, "validation_report.json")
        )
    for path in report_paths:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        print(f"  wrote {path}")
    return 0 if report.passed else 1


def _cmd_scenario(args):
    from .scenarios import ScenarioError

    handlers = {
        "list": _cmd_scenario_list,
        "describe": _cmd_scenario_describe,
        "run": _cmd_scenario_run,
        "validate": lambda a: _cmd_scenario_run(a, export=False),
    }
    try:
        return handlers[args.scenario_command](args)
    except (ScenarioError, OSError) as exc:
        raise SystemExit(f"scenario error: {exc}") from None


def _cmd_serve(args):
    from .scenarios import ScenarioError, compile_scenario
    from .serve import (
        VirtualGraph,
        create_server,
        install_signal_handlers,
    )

    try:
        spec = _load_scenario_spec(args.name)
        compiled = compile_scenario(
            spec, scale=_parse_scale(args.scale), seed=args.seed
        )
    except (ScenarioError, OSError) as exc:
        raise SystemExit(f"scenario error: {exc}") from None
    import threading

    graph = VirtualGraph.from_scenario(
        compiled, spool_dir=args.spool_dir,
        chunk_rows=args.chunk_rows,
    )
    try:
        # Bind before warming so the chosen port is printed (and
        # /healthz answers) immediately; data routes serve 503 with
        # Retry-After until the edge states are built.
        server = create_server(
            graph, args.host, args.port, verbose=args.verbose,
            ready=False, request_timeout=args.request_timeout,
        )
        host, port = server.server_address[:2]
        print(f"serving {compiled.name!r} on http://{host}:{port}/",
              flush=True)
        install_signal_handlers(server)
        warm_error = []

        def _warm():
            try:
                graph.warm()
                classification = graph.classification()
                for name, meta in classification["edges"].items():
                    print(f"  edge {name}: mode={meta['mode']} "
                          f"({meta['count']} edges)", flush=True)
                server.ready.set()
            except BaseException as exc:  # noqa: BLE001 - reported below
                warm_error.append(exc)
                threading.Thread(
                    target=server.shutdown, daemon=True
                ).start()

        threading.Thread(
            target=_warm, name="repro-serve-warm", daemon=True
        ).start()
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            # Graceful drain: stop accepting, finish in-flight
            # requests (block_on_close), then release the graph —
            # which unlinks the owned spool, Ctrl-C included.
            server.server_close()
        if warm_error:
            raise SystemExit(f"serve warmup failed: {warm_error[0]}")
    finally:
        graph.close()
    return 0


def main(argv=None):
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "protocol": _cmd_protocol,
        "example": _cmd_example,
        "report": _cmd_report,
        "validate": _cmd_validate,
        "analyze": _cmd_analyze,
        "scenario": _cmd_scenario,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
