"""Command-line interface.

``datasynth generate schema.dsl --scale Person=10000 --out data/``
parses a DSL schema, generates the graph, and streams it to disk as it
is generated (chunked, memory-bounded export; see docs/io.md).  Add
``--workers N`` to run the task DAG shard-parallel on a process pool,
``--chunk-size N`` / ``--compress`` to tune the export — output bytes
are identical for every combination.  A second subcommand runs the
paper's evaluation protocol for quick inspection::

    datasynth protocol --kind lfr --size 10000 --k 16
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def _worker_count(text):
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"--workers must be >= 1, got {value}"
        )
    return value


def _chunk_size(text):
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"--chunk-size must be >= 1, got {value}"
        )
    return value


def build_parser():
    parser = argparse.ArgumentParser(
        prog="datasynth",
        description=(
            "Property graph generator for benchmarking "
            "(reproduction of Prat-Pérez et al., 2017)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser(
        "generate", help="generate a property graph from a DSL schema"
    )
    generate.add_argument("schema", help="path to the .dsl schema file")
    generate.add_argument(
        "--scale",
        action="append",
        default=[],
        metavar="TYPE=COUNT",
        help="scale anchors (repeatable); override the DSL scale block",
    )
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--workers", type=_worker_count, default=1, metavar="N",
        help="process-pool size for shard-parallel generation "
             "(1 = serial; output is bit-identical for any N)",
    )
    generate.add_argument(
        "--out", default="datasynth-out", help="output directory"
    )
    generate.add_argument(
        "--format",
        choices=("csv", "jsonl", "edgelist", "graphml"),
        default="csv",
    )
    generate.add_argument(
        "--chunk-size", type=_chunk_size, default=None, metavar="N",
        help="rows per export chunk (streamed, memory-bounded export; "
             "default 65536 — output bytes are identical for any N)",
    )
    generate.add_argument(
        "--compress", action="store_true",
        help="gzip the exported files (deterministic .gz bytes)",
    )

    protocol = sub.add_parser(
        "protocol",
        help="run the Figure-3/4 matching-quality protocol once",
    )
    protocol.add_argument(
        "--kind", choices=("lfr", "rmat"), default="lfr"
    )
    protocol.add_argument(
        "--size",
        type=int,
        default=10_000,
        help="node count (lfr) or scale exponent (rmat)",
    )
    protocol.add_argument("--k", type=int, default=16)
    protocol.add_argument("--seed", type=int, default=0)
    protocol.add_argument(
        "--matcher",
        choices=("sbm_part", "random", "ldg", "greedy"),
        default="sbm_part",
    )
    protocol.add_argument(
        "--points", type=int, default=20,
        help="CDF sample points to print",
    )

    report = sub.add_parser(
        "report",
        help="run the experiment sweep and write a markdown report",
    )
    report.add_argument("--out", default="report.md")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument(
        "--quick", action="store_true",
        help="skip Figure 4 and the ablation (faster)",
    )

    validate = sub.add_parser(
        "validate",
        help="generate the running example and audit its contracts",
    )
    validate.add_argument("--persons", type=int, default=2_000)
    validate.add_argument("--seed", type=int, default=0)
    validate.add_argument("--workers", type=_worker_count, default=1, metavar="N")

    analyze = sub.add_parser(
        "analyze",
        help="print the structural profile of an edge-list file",
    )
    analyze.add_argument("path", help="edge-list file (tail head rows)")
    analyze.add_argument(
        "--no-clustering", action="store_true",
        help="skip the O(m * d) clustering computation",
    )

    example = sub.add_parser(
        "example",
        help="generate the running-example social network",
    )
    example.add_argument("--persons", type=int, default=10_000)
    example.add_argument("--seed", type=int, default=0)
    example.add_argument("--workers", type=_worker_count, default=1, metavar="N")
    example.add_argument("--out", default=None)
    return parser


def _parse_scale(entries):
    scale = {}
    for entry in entries:
        if "=" not in entry:
            raise SystemExit(
                f"--scale expects TYPE=COUNT, got {entry!r}"
            )
        key, _, count = entry.partition("=")
        scale[key.strip()] = int(count)
    return scale


def _cmd_generate(args):
    from .core import GraphGenerator
    from .core.dsl import load_schema
    from .io import DEFAULT_CHUNK_SIZE, make_sink

    with open(args.schema) as handle:
        source = handle.read()
    schema, dsl_scale, graph_name = load_schema(source)
    scale = dict(dsl_scale)
    scale.update(_parse_scale(args.scale))
    if not scale:
        raise SystemExit(
            "no scale given: add a DSL scale block or --scale TYPE=COUNT"
        )
    sink = make_sink(
        args.format,
        args.out,
        chunk_size=args.chunk_size or DEFAULT_CHUNK_SIZE,
        compress=args.compress,
    )
    graph = GraphGenerator(
        schema, scale, seed=args.seed, workers=args.workers
    ).generate(sink=sink)
    print(f"generated graph {graph_name!r}: {graph.summary()}")
    for path in sink.written:
        print(f"  wrote {path}")
    return 0


def _cmd_protocol(args):
    from .experiments import run_protocol

    result = run_protocol(
        args.kind, args.size, args.k,
        seed=args.seed, matcher=args.matcher,
    )
    print(f"{result.label} matcher={args.matcher}")
    for key, value in result.row().items():
        print(f"  {key}: {value}")
    idx, expected, observed = result.comparison.series(args.points)
    print("  pair-rank expected-cdf observed-cdf")
    for i, e, o in zip(idx, expected, observed):
        print(f"  {int(i):9d} {e:12.4f} {o:12.4f}")
    return 0


def _cmd_example(args):
    from .core import GraphGenerator
    from .datasets import social_network_schema
    from .io import export_graph_csv

    schema = social_network_schema(num_countries=16)
    graph = GraphGenerator(
        schema, {"Person": args.persons},
        seed=args.seed, workers=args.workers,
    ).generate()
    print(f"running example: {graph.summary()}")
    match = graph.match_results.get("knows")
    if match is not None:
        print(f"  knows matching Frobenius error: "
              f"{match.frobenius_error:.1f}")
    if args.out:
        for path in export_graph_csv(graph, args.out):
            print(f"  wrote {path}")
    return 0


def _cmd_analyze(args):
    from .graphstats import structural_summary
    from .io import read_edgelist

    table = read_edgelist(args.path)
    summary = structural_summary(
        table, clustering=not args.no_clustering
    )
    print(f"structural profile of {args.path}:")
    for key, value in summary.items():
        if isinstance(value, float):
            value = round(value, 4)
        print(f"  {key}: {value}")
    return 0


def _cmd_report(args):
    from .experiments import generate_report

    text = generate_report(
        seed=args.seed,
        include_figure4=not args.quick,
        include_ablation=not args.quick,
    )
    with open(args.out, "w") as handle:
        handle.write(text)
    print(f"wrote {args.out}")
    return 0


def _cmd_validate(args):
    from .core import GraphGenerator
    from .datasets import social_network_schema
    from .validation import standard_checks, validate

    schema = social_network_schema(num_countries=12)
    graph = GraphGenerator(
        schema, {"Person": args.persons},
        seed=args.seed, workers=args.workers,
    ).generate()
    report = validate(graph, standard_checks(schema))
    print(report)
    return 0 if report.passed else 1


def main(argv=None):
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "protocol": _cmd_protocol,
        "example": _cmd_example,
        "report": _cmd_report,
        "validate": _cmd_validate,
        "analyze": _cmd_analyze,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
