"""Plain edge-list text format (``tail head`` per line).

The interchange format of graph-processing systems (Graph500, SNAP,
GraphMat all consume whitespace edge lists).

Writing streams id-range chunks through the vectorised formatter of
:mod:`repro.io.chunks` (byte-identical to the historical per-row
f-string loop); reading consumes the file in line chunks so neither
direction materialises per-row Python tuples for the whole table.
"""

from __future__ import annotations

from itertools import islice
from pathlib import Path

import numpy as np

from ..tables import EdgeTable
from .chunks import (
    DEFAULT_CHUNK_SIZE,
    chunk_ranges,
    edge_range,
    format_edgelist_chunk,
    open_text,
    table_stem,
)

__all__ = ["write_edgelist", "read_edgelist"]


def _edgelist_chunk_job(table, lo, hi):
    """Format one edge-list chunk (module-level: runs in any worker)."""
    tails, heads = edge_range(table, lo, hi)
    return format_edgelist_chunk(tails, heads)


def write_edgelist(table, path, comment=None,
                   chunk_size=DEFAULT_CHUNK_SIZE, compress=None,
                   pmap=None):
    """Write ``tail head`` lines; optional leading ``#`` comment.

    ``pmap`` (an ordered parallel map) offloads per-chunk formatting
    to workers; results are appended in chunk order, so the bytes are
    unchanged.
    """
    path = Path(path)
    with open_text(path, "w", compress) as handle:
        if comment:
            handle.write(f"# {comment}\n")
        if pmap is None:
            for _start, tails, heads in table.iter_chunks(chunk_size):
                handle.write(format_edgelist_chunk(tails, heads))
        else:
            jobs = (
                (table, lo, hi)
                for lo, hi in chunk_ranges(table.num_edges, chunk_size)
            )
            for text in pmap(_edgelist_chunk_job, jobs):
                handle.write(text)
    return path


def read_edgelist(path, name=None, directed=False,
                  chunk_size=DEFAULT_CHUNK_SIZE):
    """Read an edge list (``#`` lines ignored), chunk by chunk."""
    path = Path(path)
    tail_parts, head_parts = [], []
    with open_text(path, "r") as handle:
        line_number = 0
        while True:
            block = list(islice(handle, chunk_size))
            if not block:
                break
            tails, heads = [], []
            for line in block:
                line_number += 1
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split()
                if len(parts) < 2:
                    raise ValueError(
                        f"{path}:{line_number}: expected 'tail head'"
                    )
                tails.append(int(parts[0]))
                heads.append(int(parts[1]))
            if tails:
                tail_parts.append(np.array(tails, dtype=np.int64))
                head_parts.append(np.array(heads, dtype=np.int64))
    empty = np.empty(0, dtype=np.int64)
    return EdgeTable(
        name or table_stem(path),
        np.concatenate(tail_parts) if tail_parts else empty,
        np.concatenate(head_parts) if head_parts else empty,
        directed=directed,
    )
