"""Plain edge-list text format (``tail head`` per line).

The interchange format of graph-processing systems (Graph500, SNAP,
GraphMat all consume whitespace edge lists).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..tables import EdgeTable

__all__ = ["write_edgelist", "read_edgelist"]


def write_edgelist(table, path, comment=None):
    """Write ``tail head`` lines; optional leading ``#`` comment."""
    path = Path(path)
    with path.open("w") as handle:
        if comment:
            handle.write(f"# {comment}\n")
        for tail, head in zip(table.tails, table.heads):
            handle.write(f"{int(tail)} {int(head)}\n")
    return path


def read_edgelist(path, name=None, directed=False):
    """Read an edge list (``#`` lines ignored)."""
    path = Path(path)
    tails, heads = [], []
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(
                    f"{path}:{line_number}: expected 'tail head'"
                )
            tails.append(int(parts[0]))
            heads.append(int(parts[1]))
    return EdgeTable(
        name or path.stem,
        np.array(tails, dtype=np.int64),
        np.array(heads, dtype=np.int64),
        directed=directed,
    )
