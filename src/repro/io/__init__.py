"""I/O connectors (the integrability requirement of Section 2)."""

from .csv_io import (
    export_graph_csv,
    read_edge_table,
    read_property_table,
    write_edge_table,
    write_property_table,
)
from .edgelist import read_edgelist, write_edgelist
from .graphml import write_graphml
from .jsonl import export_graph_jsonl, write_edges_jsonl, write_nodes_jsonl
from .networkx_adapter import (
    from_networkx,
    property_graph_to_networkx,
    to_networkx,
)

__all__ = [
    "export_graph_csv",
    "export_graph_jsonl",
    "from_networkx",
    "property_graph_to_networkx",
    "read_edge_table",
    "read_edgelist",
    "read_property_table",
    "to_networkx",
    "write_edge_table",
    "write_edgelist",
    "write_edges_jsonl",
    "write_graphml",
    "write_nodes_jsonl",
    "write_property_table",
]
