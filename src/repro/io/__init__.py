"""I/O connectors (the integrability requirement of Section 2).

Every exporter streams fixed-size id-range chunks through the
vectorised formatters of :mod:`repro.io.chunks`; the
:class:`~repro.io.streaming.GraphSink` / ``GraphSource`` layer bundles
them into whole-graph, manifest-carrying directory exports — see
``docs/io.md`` for the API and the byte-identity guarantee.
"""

from .chunks import DEFAULT_CHUNK_SIZE, open_text
from .csv_io import (
    export_graph_csv,
    read_edge_table,
    read_property_table,
    write_edge_table,
    write_property_table,
)
from .edgelist import read_edgelist, write_edgelist
from .graphml import write_graphml
from .jsonl import (
    export_graph_jsonl,
    read_edge_table_jsonl,
    read_property_table_jsonl,
    write_edge_table_jsonl,
    write_edges_jsonl,
    write_nodes_jsonl,
    write_property_table_jsonl,
)
from .networkx_adapter import (
    from_networkx,
    property_graph_to_networkx,
    to_networkx,
)
from .spool import (
    LazyColumn,
    SpooledEdgeTable,
    SpooledPropertyTable,
    TableSpool,
)
from .streaming import (
    SINK_FORMATS,
    CsvSink,
    CsvSource,
    EdgelistSink,
    EdgelistSource,
    GraphmlSink,
    GraphSink,
    GraphSource,
    JsonlSink,
    JsonlSource,
    export_graph,
    make_sink,
    make_source,
    merge_shard_manifests,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "SINK_FORMATS",
    "CsvSink",
    "CsvSource",
    "EdgelistSink",
    "EdgelistSource",
    "GraphSink",
    "GraphSource",
    "GraphmlSink",
    "JsonlSink",
    "JsonlSource",
    "LazyColumn",
    "SpooledEdgeTable",
    "SpooledPropertyTable",
    "TableSpool",
    "export_graph",
    "export_graph_csv",
    "export_graph_jsonl",
    "from_networkx",
    "make_sink",
    "make_source",
    "merge_shard_manifests",
    "open_text",
    "property_graph_to_networkx",
    "read_edge_table",
    "read_edge_table_jsonl",
    "read_edgelist",
    "read_property_table",
    "read_property_table_jsonl",
    "to_networkx",
    "write_edge_table",
    "write_edge_table_jsonl",
    "write_edgelist",
    "write_edges_jsonl",
    "write_graphml",
    "write_nodes_jsonl",
    "write_property_table",
    "write_property_table_jsonl",
]
