"""CSV export/import of Property Tables and Edge Tables.

The integrability requirement of Section 2: generators should connect
to production technologies.  CSV is the lingua franca (LDBC-SNB ships
CSVs); every table here round-trips losslessly for the supported
dtypes.

Writers stream fixed-size id-range chunks through the vectorised
formatters of :mod:`repro.io.chunks` instead of the historical per-row
``csv.writer`` loop; the bytes are identical (QUOTE_MINIMAL quoting,
CRLF terminators — pinned by ``tests/golden/``) but peak memory is
O(chunk) and throughput is an order of magnitude higher (see
``benchmarks/bench_streaming_io.py``).  ``compress=True`` (or a
``.gz`` suffix) gzips transparently with deterministic headers.
"""

from __future__ import annotations

import csv
from itertools import islice
from pathlib import Path

import numpy as np

from ..tables import EdgeTable, PropertyTable
from .chunks import (
    DEFAULT_CHUNK_SIZE,
    chunk_ranges,
    edge_range,
    format_edge_csv_chunk,
    format_property_csv_chunk,
    open_text,
    parse_typed_column,
    property_range,
    table_stem,
)

__all__ = [
    "write_property_table",
    "read_property_table",
    "write_edge_table",
    "read_edge_table",
    "export_graph_csv",
]

_PT_HEADER = ["id", "value"]
_ET_HEADER = ["id", "tailId", "headId"]


def _property_chunk_job(table, start, stop):
    """Format one PT chunk (module-level: runs in any worker)."""
    return format_property_csv_chunk(
        start, property_range(table, start, stop)
    )


def _edge_chunk_job(table, start, stop):
    """Format one ET chunk (module-level: runs in any worker)."""
    tails, heads = edge_range(table, start, stop)
    return format_edge_csv_chunk(start, tails, heads)


def write_property_table(table, path, chunk_size=DEFAULT_CHUNK_SIZE,
                         compress=None, pmap=None):
    """Write a PT as ``id,value`` CSV (header included), chunk-streamed.

    ``pmap`` (an ordered parallel map, e.g. the sharded executor's
    worker pool) offloads per-chunk formatting — the dominant export
    cost — while this writer appends the results in chunk order, so
    the bytes are unchanged.
    """
    path = Path(path)
    with open_text(path, "w", compress) as handle:
        handle.write("id,value\r\n")
        if pmap is None:
            for start, values in table.iter_chunks(chunk_size):
                handle.write(format_property_csv_chunk(start, values))
        else:
            jobs = (
                (table, lo, hi)
                for lo, hi in chunk_ranges(len(table), chunk_size)
            )
            for text in pmap(_property_chunk_job, jobs):
                handle.write(text)
    return path


def write_edge_table(table, path, chunk_size=DEFAULT_CHUNK_SIZE,
                     compress=None, pmap=None):
    """Write an ET as ``id,tailId,headId`` CSV, chunk-streamed."""
    path = Path(path)
    with open_text(path, "w", compress) as handle:
        handle.write("id,tailId,headId\r\n")
        if pmap is None:
            for start, tails, heads in table.iter_chunks(chunk_size):
                handle.write(format_edge_csv_chunk(start, tails, heads))
        else:
            jobs = (
                (table, lo, hi)
                for lo, hi in chunk_ranges(len(table), chunk_size)
            )
            for text in pmap(_edge_chunk_job, jobs):
                handle.write(text)
    return path


def _iter_csv_chunks(path, expected_header, chunk_size):
    """Yield ``(start_row, columns)`` per chunk; validates shape."""
    with open_text(path, "r") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != expected_header:
            raise ValueError(
                f"{path}: expected header {expected_header}, got {header}"
            )
        width = len(expected_header)
        start = 0
        while True:
            block = list(islice(reader, chunk_size))
            if not block:
                return
            for offset, row in enumerate(block):
                if len(row) != width:
                    raise ValueError(
                        f"{path}:{start + offset + 2}: malformed row"
                    )
            yield start, tuple(
                [row[i] for row in block] for i in range(width)
            )
            start += len(block)


def _check_dense_ids(path, start, id_strings, label="ids"):
    """Vectorised check that ids equal ``start..start+len-1``."""
    try:
        ids = parse_typed_column(id_strings, np.int64)
    except ValueError:
        raise ValueError(
            f"{path}: non-dense {label} (non-integer id)"
        ) from None
    expected = np.arange(start, start + len(ids), dtype=np.int64)
    if not np.array_equal(ids, expected):
        bad = int(np.argmax(ids != expected))
        raise ValueError(
            f"{path}: non-dense {label} (expected {start + bad}, "
            f"got {int(ids[bad])})"
        )


def read_property_table(path, name=None, dtype=None,
                        chunk_size=DEFAULT_CHUNK_SIZE):
    """Read a PT written by :func:`write_property_table`.

    ``dtype`` forces the value column type — any supported table dtype
    round-trips exactly, including bool, unicode and datetime (the
    manifest-driven :class:`~repro.io.streaming.CsvSource` passes the
    recorded dtype automatically).  Without ``dtype``, int, then float,
    then string parsing is attempted, matching the historical
    behaviour.  Typed reads parse chunk by chunk; only the heuristic
    path buffers the raw strings.
    """
    path = Path(path)
    forced = None if dtype is None else np.dtype(dtype)
    parsed = []
    raw = []
    for start, (id_col, value_col) in _iter_csv_chunks(
        path, _PT_HEADER, chunk_size
    ):
        _check_dense_ids(path, start, id_col)
        if forced is None:
            raw.extend(value_col)
        else:
            parsed.append(parse_typed_column(value_col, forced))
    if forced is None:
        values = _parse_values(raw, None)
    elif parsed:
        values = np.concatenate(parsed)
    else:
        values = np.empty(
            0, dtype=object if forced.kind == "O" else forced
        )
    return PropertyTable(name or table_stem(path), values)


def _parse_values(values, dtype):
    if dtype is not None:
        dtype = np.dtype(dtype)
        if dtype.kind == "O":
            return np.array(values, dtype=object)
        return parse_typed_column(values, dtype)
    try:
        return np.array([int(v) for v in values], dtype=np.int64)
    except ValueError:
        pass
    try:
        return np.array([float(v) for v in values], dtype=np.float64)
    except ValueError:
        pass
    return np.array(values, dtype=object)


def read_edge_table(path, name=None, directed=False,
                    num_tail_nodes=None, num_head_nodes=None,
                    chunk_size=DEFAULT_CHUNK_SIZE):
    """Read an ET written by :func:`write_edge_table`, chunk by chunk."""
    path = Path(path)
    tail_parts, head_parts = [], []
    for start, (id_col, tail_col, head_col) in _iter_csv_chunks(
        path, _ET_HEADER, chunk_size
    ):
        _check_dense_ids(path, start, id_col, label="edge ids")
        tail_parts.append(parse_typed_column(tail_col, np.int64))
        head_parts.append(parse_typed_column(head_col, np.int64))
    empty = np.empty(0, dtype=np.int64)
    return EdgeTable(
        name or table_stem(path),
        np.concatenate(tail_parts) if tail_parts else empty,
        np.concatenate(head_parts) if head_parts else empty,
        num_tail_nodes=num_tail_nodes,
        num_head_nodes=num_head_nodes,
        directed=directed,
    )


def export_graph_csv(graph, directory, chunk_size=DEFAULT_CHUNK_SIZE,
                     compress=False):
    """Export a whole :class:`~repro.core.result.PropertyGraph` to a
    directory of CSVs: one file per PT and ET, named by qualified name,
    plus a ``manifest.json`` recording dtypes and shapes so
    :class:`~repro.io.streaming.CsvSource` can round-trip losslessly.

    Returns the list of written paths.
    """
    from .streaming import CsvSink, export_graph

    sink = CsvSink(directory, chunk_size=chunk_size, compress=compress)
    return export_graph(graph, sink)
