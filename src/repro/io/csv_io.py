"""CSV export/import of Property Tables and Edge Tables.

The integrability requirement of Section 2: generators should connect
to production technologies.  CSV is the lingua franca (LDBC-SNB ships
CSVs); every table here round-trips losslessly for the supported
dtypes.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from ..tables import EdgeTable, PropertyTable

__all__ = [
    "write_property_table",
    "read_property_table",
    "write_edge_table",
    "read_edge_table",
    "export_graph_csv",
]


def write_property_table(table, path):
    """Write a PT as ``id,value`` CSV (header included)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "value"])
        for row_id, value in table.rows():
            writer.writerow([row_id, value])
    return path


def read_property_table(path, name=None, dtype=None):
    """Read a PT written by :func:`write_property_table`.

    ``dtype`` forces the value column type; by default int, then float,
    then string parsing is attempted.
    """
    path = Path(path)
    values = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["id", "value"]:
            raise ValueError(
                f"{path}: expected header ['id', 'value'], got {header}"
            )
        for row_number, row in enumerate(reader):
            if len(row) != 2:
                raise ValueError(f"{path}:{row_number + 2}: malformed row")
            row_id, value = row
            if int(row_id) != row_number:
                raise ValueError(
                    f"{path}: non-dense ids (expected {row_number}, "
                    f"got {row_id})"
                )
            values.append(value)
    array = _parse_values(values, dtype)
    return PropertyTable(name or path.stem, array)


def _parse_values(values, dtype):
    if dtype is not None:
        dtype = np.dtype(dtype)
        if dtype.kind in ("U", "O"):
            return np.array(values, dtype=object)
        return np.array(values).astype(dtype)
    try:
        return np.array([int(v) for v in values], dtype=np.int64)
    except ValueError:
        pass
    try:
        return np.array([float(v) for v in values], dtype=np.float64)
    except ValueError:
        pass
    return np.array(values, dtype=object)


def write_edge_table(table, path):
    """Write an ET as ``id,tailId,headId`` CSV."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "tailId", "headId"])
        for edge_id, tail, head in table.rows():
            writer.writerow([edge_id, tail, head])
    return path


def read_edge_table(path, name=None, directed=False,
                    num_tail_nodes=None, num_head_nodes=None):
    """Read an ET written by :func:`write_edge_table`."""
    path = Path(path)
    tails, heads = [], []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["id", "tailId", "headId"]:
            raise ValueError(
                f"{path}: expected header ['id', 'tailId', 'headId'], "
                f"got {header}"
            )
        for row_number, row in enumerate(reader):
            if len(row) != 3:
                raise ValueError(f"{path}:{row_number + 2}: malformed row")
            edge_id, tail, head = row
            if int(edge_id) != row_number:
                raise ValueError(f"{path}: non-dense edge ids")
            tails.append(int(tail))
            heads.append(int(head))
    return EdgeTable(
        name or path.stem,
        np.array(tails, dtype=np.int64),
        np.array(heads, dtype=np.int64),
        num_tail_nodes=num_tail_nodes,
        num_head_nodes=num_head_nodes,
        directed=directed,
    )


def export_graph_csv(graph, directory):
    """Export a whole :class:`~repro.core.result.PropertyGraph` to a
    directory of CSVs: one file per PT and ET, named by qualified name.

    Returns the list of written paths.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for key, table in graph.node_properties.items():
        written.append(
            write_property_table(table, directory / f"{key}.csv")
        )
    for key, table in graph.edge_properties.items():
        written.append(
            write_property_table(table, directory / f"{key}.csv")
        )
    for name, table in graph.edge_tables.items():
        written.append(
            write_edge_table(table, directory / f"{name}.csv")
        )
    return written
