"""Chunked batch formatting — the engine room of the streaming IO layer.

Every exporter used to materialise whole tables and write one Python
row at a time (``csv.writer`` loops).  This module replaces that with
batch formatting of fixed-size id-range *chunks*: a chunk of
``chunk_size`` rows is converted to its exact output text in a handful
of column-level operations, written, and released.  Peak memory on the
export path is therefore O(chunk), not O(table).

The implementation strategy is measured, not assumed (see
``benchmarks/bench_streaming_io.py``): numpy handles dtype dispatch,
datetime/bool conversion, non-finite masking and typed parsing, while
value-to-text conversion and row assembly run as C-level batch string
operations (``map``/``join`` over ``ndarray.tolist()`` scalars) —
``np.char`` ufuncs allocate a fresh fixed-width unicode array per
operation and benchmark ~3x *slower* than ``csv.writer``, whereas this
hybrid is ~2x faster.

Byte-identity is the contract: for every supported dtype the chunk
formatters reproduce the legacy per-row output *exactly* —
``csv.writer``'s QUOTE_MINIMAL quoting and CRLF terminators,
``json.dumps``'s separators, escapes and float reprs,
``xml.sax.saxutils.escape``'s entity set.  ``tests/golden/`` pins the
bytes; ``tests/test_streaming_io.py`` cross-checks against the stdlib
writers on adversarial values.  (Float formatting relies on
``str(float)`` being the shortest-roundtrip repr, which numpy scalar
``str`` has matched since numpy 1.14.)
"""

from __future__ import annotations

import gzip
import io
import json
from json.encoder import encode_basestring_ascii
from pathlib import Path

import numpy as np

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "chunk_ranges",
    "edge_range",
    "id_strings",
    "property_range",
    "open_text",
    "table_stem",
    "stringify_column",
    "csv_quote_column",
    "xml_escape_column",
    "json_encode_column",
    "format_property_csv_chunk",
    "format_edge_csv_chunk",
    "format_edgelist_chunk",
    "format_json_records_chunk",
    "parse_typed_column",
]

#: Default rows per chunk.  64k int64 rows is ~0.5 MB per column —
#: small enough to bound memory, large enough to amortise per-chunk
#: overhead.
DEFAULT_CHUNK_SIZE = 65_536


def chunk_ranges(total, chunk_size):
    """Yield contiguous ``(lo, hi)`` id ranges covering ``[0, total)``."""
    chunk_size = int(chunk_size)
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    for lo in range(0, int(total), chunk_size):
        yield lo, min(lo + chunk_size, int(total))


def property_range(table, start, stop):
    """Value rows ``[start, stop)`` of an in-memory or spooled PT.

    Spooled tables expose ``read_range``; in-memory tables slice their
    value column.  Used by the parallel-format jobs, which receive the
    table (picklable: spooled tables ship as spool paths) and read
    their own chunk worker-side.
    """
    read = getattr(table, "read_range", None)
    if read is not None:
        return read(start, stop)
    return table.values[start:stop]


def edge_range(table, start, stop):
    """``(tails, heads)`` rows ``[start, stop)`` of an ET, spool-aware."""
    read = getattr(table, "read_range", None)
    if read is not None:
        return read(start, stop)
    return table.tails[start:stop], table.heads[start:stop]


# -- file handles -------------------------------------------------------------


class _GzipTextWriter(io.TextIOWrapper):
    """Deterministic gzip text writer.

    ``gzip.open`` embeds the mtime (and filename) in the header, which
    would break the byte-identity guarantee across runs; this wrapper
    pins ``mtime=0`` and an empty stored name so identical content
    always produces identical ``.gz`` bytes.
    """

    def __init__(self, path):
        self._raw = open(path, "wb")
        self._gz = gzip.GzipFile(
            filename="", mode="wb", fileobj=self._raw, mtime=0
        )
        super().__init__(self._gz, encoding="utf-8", newline="")

    def close(self):
        try:
            super().close()
        finally:
            self._raw.close()


def table_stem(path):
    """Default table name for a data file: the stem, ``.gz``-aware."""
    path = Path(path)
    if path.suffix == ".gz":
        path = path.with_suffix("")
    return path.stem


def open_text(path, mode="r", compress=None):
    """Open a text file, transparently gzipped.

    ``compress=None`` infers from the ``.gz`` suffix.  Newline
    translation is disabled — the chunk formatters embed the exact
    terminators (CRLF for CSV, LF elsewhere) — and the encoding is
    pinned to UTF-8 so output bytes don't depend on the locale.
    """
    path = Path(path)
    if compress is None:
        compress = path.suffix == ".gz"
    if mode not in ("r", "w"):
        raise ValueError(f"open_text supports 'r'/'w', got {mode!r}")
    if not compress:
        handle = open(path, mode, encoding="utf-8", newline="")
    elif mode == "r":
        handle = gzip.open(path, "rt", encoding="utf-8", newline="")
    else:
        handle = _GzipTextWriter(path)
    if mode == "w":
        # Export writes are the `export` fault-injection site; the
        # wrapper is the identity when no fault plan targets it.
        # Imported lazily: repro.io and repro.core import each other
        # at module level through spool/sharded, so a top-level import
        # here could observe a partially initialised package.
        from ..core import faults
        handle = faults.wrap_export_handle(handle)
    return handle


# -- column -> string conversion ----------------------------------------------


def stringify_column(values):
    """``str()`` of every element as a list, batch-converted.

    Matches ``csv.writer``'s conversion rules: ``str`` of the scalar
    for numeric/bool/datetime kinds (``str(python scalar)`` equals
    ``str(numpy scalar)`` for every supported kind) and ``None`` ->
    empty field for object columns.  Datetimes go through numpy's
    ISO-format ``astype`` so sub-day units keep the ``T`` separator
    ``str(datetime64)`` uses.
    """
    values = np.asarray(values)
    kind = values.dtype.kind
    if kind == "O":
        return [
            "" if v is None else str(v) for v in values.tolist()
        ]
    if kind == "U":
        return values.tolist()
    if kind == "M":
        return values.astype(str).tolist()
    return [str(v) for v in values.tolist()]


def csv_quote_column(fields):
    """Apply ``csv.writer``'s QUOTE_MINIMAL to a field sequence.

    A field is quoted iff it contains the delimiter, the quote char, or
    a line-terminator character; embedded quotes are doubled.
    """
    out = []
    append = out.append
    for field in fields:
        if '"' in field:
            append('"' + field.replace('"', '""') + '"')
        elif "," in field or "\n" in field or "\r" in field:
            append('"' + field + '"')
        else:
            append(field)
    return out


def xml_escape_column(fields):
    """``xml.sax.saxutils.escape`` over a field sequence."""
    return [
        field
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        if ("&" in field or "<" in field or ">" in field)
        else field
        for field in fields
    ]


def _jsonable(value):
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.str_):
        return str(value)
    return value


#: json.dumps spellings of the non-finite doubles (str() spells them
#: ``nan`` / ``inf`` / ``-inf`` instead).
_JSON_NONFINITE = {"nan": "NaN", "inf": "Infinity", "-inf": "-Infinity"}


def json_encode_column(values):
    """JSON-encode every element, byte-identical to ``json.dumps``.

    Numeric and bool columns convert without touching ``json.dumps``;
    strings go through the C ``encode_basestring_ascii`` (the exact
    escaping ``dumps`` applies); arbitrary objects fall back to
    per-element ``dumps`` within the chunk.
    """
    values = np.asarray(values)
    kind = values.dtype.kind
    if kind in "iu":
        return [str(v) for v in values.tolist()]
    if kind == "b":
        return np.where(values, "true", "false").tolist()
    if kind == "f":
        out = [str(v) for v in values.tolist()]
        if not np.isfinite(values).all():
            for i in np.flatnonzero(~np.isfinite(values)).tolist():
                out[i] = _JSON_NONFINITE[out[i]]
        return out
    if kind == "M":
        # ISO strings; no JSON metacharacters possible.
        return [
            '"' + v + '"' for v in values.astype(str).tolist()
        ]
    if kind == "U":
        return [encode_basestring_ascii(v) for v in values.tolist()]
    return [
        encode_basestring_ascii(v) if type(v) is str
        else json.dumps(_jsonable(v))
        for v in values.tolist()
    ]


# -- chunk -> text assembly ---------------------------------------------------


def id_strings(start, stop):
    """The dense id column ``start..stop-1`` as decimal strings."""
    return list(map(str, range(start, stop)))


def format_property_csv_chunk(start, values):
    """``id,value`` CSV lines (CRLF) for rows ``start..start+len-1``."""
    vals = csv_quote_column(stringify_column(values))
    if not vals:
        return ""
    rows = map(",".join, zip(id_strings(start, start + len(vals)),
                             vals))
    return "\r\n".join(rows) + "\r\n"


def format_edge_csv_chunk(start, tails, heads):
    """``id,tailId,headId`` CSV lines (CRLF) for one edge chunk."""
    if not len(tails):
        return ""
    rows = map(",".join, zip(
        id_strings(start, start + len(tails)),
        map(str, tails.tolist()),
        map(str, heads.tolist()),
    ))
    return "\r\n".join(rows) + "\r\n"


def format_edgelist_chunk(tails, heads):
    """``tail head`` lines (LF) for one edge chunk."""
    if not len(tails):
        return ""
    rows = map(" ".join, zip(
        map(str, tails.tolist()), map(str, heads.tolist())
    ))
    return "\n".join(rows) + "\n"


def record_template(keys, item="%s"):
    """A ``%``-template reproducing ``json.dumps({key: value, ...})``.

    ``format_json_records_chunk`` fills one ``%s`` per column; callers
    building custom line shapes (GraphML) pass their own ``item``.
    Literal ``%`` in keys is escaped so only the value slots format.
    """
    if not keys:
        raise ValueError("records need at least one key")
    return "{" + ", ".join(
        f"{json.dumps(key)}: ".replace("%", "%%") + item
        for key in keys
    ) + "}"


def format_json_records_chunk(keys, encoded_columns):
    """JSON-lines records (LF) from pre-encoded value columns.

    Reproduces ``json.dumps({key: value, ...})`` with the default
    ``", "`` / ``": "`` separators for every row of the chunk.
    """
    template = record_template(keys)
    rows = [template % row for row in zip(*encoded_columns)]
    if not rows:
        return ""
    return "\n".join(rows) + "\n"


# -- string -> column parsing -------------------------------------------------


def parse_typed_column(strings, dtype):
    """Parse CSV field strings back into an array of ``dtype``.

    The inverse of :func:`stringify_column` for every supported table
    dtype (int/uint, float — including ``nan``/``inf`` —, bool,
    unicode, datetime, object).  Object columns keep the raw field
    strings (CSV cannot distinguish ``None`` from its string form; use
    JSONL for null-preserving round trips).
    """
    dtype = np.dtype(dtype) if dtype is not object else np.dtype(object)
    if dtype.kind == "O":
        return np.array(list(strings), dtype=object)
    arr = np.asarray(strings, dtype=str)
    if dtype.kind == "b":
        return arr == "True"
    if arr.size == 0:
        return np.empty(0, dtype=dtype)
    return arr.astype(dtype)
