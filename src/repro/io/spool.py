"""Disk spool backing the sharded executor (out-of-core tables).

The sharded executor never holds a whole table in memory: every
property / edge table lands in a :class:`TableSpool` as per-shard
``.npy`` part files, one shard directory per id-range
``[i*shard_rows, (i+1)*shard_rows)``.  :class:`SpooledPropertyTable`
and :class:`SpooledEdgeTable` then expose the *exact* table interface
the streaming exporters consume (``iter_chunks`` with global chunk
starts, ``values`` with a real dtype, ``gather``), loading at most one
shard plus one chunk at a time — which is how the sharded pipeline
reuses the in-memory sinks unchanged and inherits their byte-identity
guarantee.

Each shard directory carries its own ``manifest.json``; the spool's
root manifest is their
:func:`~repro.io.streaming.merge_shard_manifests` merge, making the
spool a self-describing on-disk graph fragment store.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import numpy as np

from .streaming import merge_shard_manifests

__all__ = [
    "LazyColumn",
    "SpooledEdgeTable",
    "SpooledPropertyTable",
    "TableSpool",
    "SHARD_MANIFEST_NAME",
]

SHARD_MANIFEST_NAME = "manifest.json"


def _dtype_token(dtype):
    dtype = np.dtype(dtype)
    return "object" if dtype.kind == "O" else dtype.str


def _save(path, array):
    path.parent.mkdir(parents=True, exist_ok=True)
    np.save(path, array, allow_pickle=array.dtype.kind == "O")


def _load(path, dtype_kind):
    return np.load(path, allow_pickle=dtype_kind == "O")


class TableSpool:
    """Per-shard ``.npy`` storage for the sharded executor.

    Parameters
    ----------
    directory:
        spool root; shard ``i`` lives in ``shards/{i:05d}/``.
    shard_rows:
        rows per shard — the memory bound of the whole pipeline.
    """

    def __init__(self, directory, shard_rows):
        self.directory = Path(directory)
        self.shard_rows = int(shard_rows)
        if self.shard_rows < 1:
            raise ValueError("shard_rows must be >= 1")
        #: table key -> {"kind", "role", "shards": [per-shard entry]}
        self._tables = {}

    # -- geometry ----------------------------------------------------------

    def shard_bounds(self, count):
        """Contiguous ``(lo, hi)`` shard ranges covering ``count`` rows.

        A zero-row table still gets one (empty) shard, so its dtype is
        recorded on disk — the empty-shard contract.
        """
        count = int(count)
        if count == 0:
            return [(0, 0)]
        return [
            (lo, min(lo + self.shard_rows, count))
            for lo in range(0, count, self.shard_rows)
        ]

    def shard_dir(self, index):
        return self.directory / "shards" / f"{index:05d}"

    def _part_path(self, index, key, column=None):
        stem = key if column is None else f"{key}.{column}"
        return self.shard_dir(index) / f"{stem}.npy"

    # -- writes ------------------------------------------------------------

    def _entry_list(self, key, kind, **meta):
        entry = self._tables.setdefault(
            key, {"kind": kind, "shards": [], **meta}
        )
        if entry["kind"] != kind:
            raise ValueError(
                f"table {key!r} already spooled with kind "
                f"{entry['kind']!r}"
            )
        return entry

    def write_property_shard(self, key, index, values, role="property"):
        """Persist one id-range shard of a property column."""
        values = np.asarray(values)
        entry = self._entry_list(key, "property", role=role)
        if len(entry["shards"]) != index:
            raise ValueError(
                f"table {key!r}: shard {index} written out of order "
                f"(expected {len(entry['shards'])})"
            )
        _save(self._part_path(index, key), values)
        entry["shards"].append(
            {"rows": int(values.size), "dtype": _dtype_token(values.dtype)}
        )

    def write_edge_shard(self, key, index, tails, heads):
        """Persist one id-range shard of an edge table's columns."""
        tails = np.ascontiguousarray(tails, dtype=np.int64)
        heads = np.ascontiguousarray(heads, dtype=np.int64)
        if tails.size != heads.size:
            raise ValueError(
                f"table {key!r}: shard {index} tails/heads differ"
            )
        entry = self._entry_list(key, "edge")
        if len(entry["shards"]) != index:
            raise ValueError(
                f"table {key!r}: shard {index} written out of order "
                f"(expected {len(entry['shards'])})"
            )
        _save(self._part_path(index, key, "tails"), tails)
        _save(self._part_path(index, key, "heads"), heads)
        entry["shards"].append({"rows": int(tails.size)})

    def finish_property(self, key, name=None):
        """Seal a property table: a :class:`SpooledPropertyTable`."""
        entry = self._tables[key]
        shards = entry["shards"]
        dtype = next(
            (s["dtype"] for s in shards if s["rows"]), shards[0]["dtype"]
        )
        return SpooledPropertyTable(
            name or key, self, key, shards, np.dtype(
                object if dtype == "object" else dtype
            ),
        )

    def finish_edge(self, key, num_tail_nodes, num_head_nodes, directed,
                    name=None):
        """Seal an edge table: a :class:`SpooledEdgeTable`.

        Zero-shard tables get one empty ``int64`` shard so the on-disk
        dtype matches what chunked structure emission guarantees.
        """
        entry = self._tables.setdefault(key, {"kind": "edge", "shards": []})
        if not entry["shards"]:
            self.write_edge_shard(
                key, 0,
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
            )
        entry.update(
            num_tail_nodes=int(num_tail_nodes),
            num_head_nodes=int(num_head_nodes),
            directed=bool(directed),
        )
        return SpooledEdgeTable(
            name or key, self, key, entry["shards"],
            int(num_tail_nodes), int(num_head_nodes), bool(directed),
        )

    # -- scratch (transient global state: pre-match structures, codes) ------

    def scratch_path(self, name):
        return self.directory / "scratch" / f"{name}.npy"

    def spill(self, name, array):
        """Park a whole-table array on disk; hand back a bounded view.

        Numeric arrays come back memory-mapped (pages load on demand),
        which is how genuinely-global stages — sampled pair codes,
        degree offsets — stay out of the RSS budget.
        """
        array = np.asarray(array)
        path = self.scratch_path(name)
        _save(path, array)
        if array.dtype.kind == "O":
            return array  # object arrays cannot be mapped; keep as is
        return np.load(path, mmap_mode="r")

    def spiller(self, prefix):
        """A ``spill(name, array)`` callable namespaced by ``prefix``."""
        return lambda name, array: self.spill(f"{prefix}.{name}", array)

    def drop_scratch(self, prefix):
        """Delete all scratch files under ``prefix`` (post-match)."""
        scratch = self.directory / "scratch"
        if not scratch.exists():
            return
        for path in scratch.glob(f"{prefix}.*.npy"):
            path.unlink()
        exact = self.scratch_path(prefix)
        if exact.exists():
            exact.unlink()

    # -- manifests ---------------------------------------------------------

    def shard_manifest(self, index):
        """The manifest dict of one shard directory."""
        tables = {}
        for key, entry in self._tables.items():
            shards = entry["shards"]
            if index >= len(shards):
                continue
            shard = shards[index]
            if entry["kind"] == "property":
                tables[key] = {
                    "kind": "property",
                    "role": entry.get("role", "property"),
                    "rows": shard["rows"],
                    "dtype": shard["dtype"],
                }
            else:
                tables[key] = {
                    "kind": "edge",
                    "rows": shard["rows"],
                    "num_tail_nodes": entry["num_tail_nodes"],
                    "num_head_nodes": entry["num_head_nodes"],
                    "directed": entry["directed"],
                }
        return {"version": 1, "shard": index, "tables": tables}

    def write_manifests(self):
        """Write per-shard manifests and their merged root manifest."""
        num_shards = max(
            (len(e["shards"]) for e in self._tables.values()), default=0
        )
        manifests = []
        for index in range(num_shards):
            manifest = self.shard_manifest(index)
            manifests.append(manifest)
            shard_dir = self.shard_dir(index)
            shard_dir.mkdir(parents=True, exist_ok=True)
            with open(
                shard_dir / SHARD_MANIFEST_NAME, "w", encoding="utf-8"
            ) as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
                handle.write("\n")
        if not manifests:
            return None
        merged = merge_shard_manifests(manifests)
        self.directory.mkdir(parents=True, exist_ok=True)
        with open(
            self.directory / SHARD_MANIFEST_NAME, "w", encoding="utf-8"
        ) as handle:
            json.dump(merged, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return merged

    def cleanup(self):
        shutil.rmtree(self.directory, ignore_errors=True)


class _SpooledBase:
    """Shared shard-walking machinery (one-shard LRU cache)."""

    def __init__(self, spool, key, shards):
        self._spool = spool
        self._key = key
        self._shards = shards
        self._rows = sum(s["rows"] for s in shards)
        # Single-slot cache stored as one tuple so concurrent readers
        # (worker waves) can never observe a torn index/payload pair.
        self._cache = None

    def __len__(self):
        return self._rows

    def _load_shard(self, index):
        cached = self._cache
        if cached is not None and cached[0] == index:
            return cached[1]
        arrays = self._read_shard(index)
        self._cache = (index, arrays)
        return arrays

    def _shard_of(self, row):
        return int(row) // self._spool.shard_rows

    def _ranges(self, start, stop):
        """Yield ``(shard_index, local_lo, local_hi)`` covering a range."""
        rows = self._spool.shard_rows
        row = start
        while row < stop:
            index = row // rows
            local_lo = row - index * rows
            local_hi = min(stop - index * rows, rows)
            yield index, local_lo, local_hi
            row = index * rows + local_hi


class SpooledPropertyTable(_SpooledBase):
    """Spool-backed twin of :class:`~repro.tables.PropertyTable`.

    Implements the slice of the PT interface the exporters and the
    executor touch; ``values`` is a :class:`LazyColumn`, never a whole
    in-memory array.
    """

    def __init__(self, name, spool, key, shards, dtype):
        super().__init__(spool, key, shards)
        self.name = str(name)
        self.dtype = np.dtype(dtype)

    def __repr__(self):
        return (
            f"SpooledPropertyTable(name={self.name!r}, n={len(self)}, "
            f"dtype={self.dtype}, shards={len(self._shards)})"
        )

    @property
    def values(self):
        return LazyColumn(self)

    def _read_shard(self, index):
        return _load(
            self._spool._part_path(index, self._key), self.dtype.kind
        )

    def read_range(self, start, stop):
        """Rows ``[start, stop)`` as one array (bounded by the range)."""
        start, stop = int(start), int(stop)
        if not 0 <= start <= stop <= len(self):
            raise IndexError(
                f"PT {self.name!r}: range [{start}, {stop}) out of "
                f"bounds [0, {len(self)})"
            )
        parts = [
            self._load_shard(index)[lo:hi]
            for index, lo, hi in self._ranges(start, stop)
        ]
        if not parts:
            return np.empty(0, dtype=self.dtype)
        if len(parts) == 1:
            return np.asarray(parts[0])
        return np.concatenate(parts)

    def iter_chunks(self, chunk_size, start=0, stop=None):
        """Same contract as ``PropertyTable.iter_chunks`` — global
        chunk starts, chunk boundaries independent of shard geometry."""
        chunk_size = int(chunk_size)
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        n = len(self)
        start = int(start)
        stop = n if stop is None else min(int(stop), n)
        if not 0 <= start <= n:
            raise IndexError(
                f"PT {self.name!r}: start {start} out of range [0, {n}]"
            )
        for lo in range(start, stop, chunk_size):
            hi = min(lo + chunk_size, stop)
            yield lo, self.read_range(lo, hi)

    def gather(self, instance_ids):
        """Vectorised lookup, streamed shard by shard."""
        ids = np.asarray(instance_ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= len(self)):
            raise IndexError(
                f"PT {self.name!r}: ids out of range [0, {len(self)})"
            )
        out = np.empty(ids.size, dtype=self.dtype)
        if ids.size == 0:
            return out
        rows = self._spool.shard_rows
        shard_idx = ids // rows
        for index in np.unique(shard_idx):
            mask = shard_idx == index
            values = self._load_shard(int(index))
            out[mask] = values[ids[mask] - int(index) * rows]
        return out

    def to_property_table(self):
        """Materialise (global stages: correlated matching, validation)."""
        from ..tables import PropertyTable

        return PropertyTable(self.name, self.read_range(0, len(self)))


class LazyColumn:
    """Array-like view over a spooled property column.

    Supports exactly what the chunked writers do with ``.values``:
    ``len``, ``dtype``, slicing (returns a real ndarray), and
    ``np.asarray`` for global consumers.
    """

    def __init__(self, table):
        self._table = table
        self.dtype = table.dtype

    def __len__(self):
        return len(self._table)

    def __getitem__(self, item):
        if isinstance(item, slice):
            start, stop, step = item.indices(len(self._table))
            values = self._table.read_range(start, stop)
            return values if step == 1 else values[::step]
        index = int(item)
        if index < 0:
            index += len(self._table)
        return self._table.read_range(index, index + 1)[0]

    def __array__(self, dtype=None, copy=None):
        values = self._table.read_range(0, len(self._table))
        return values if dtype is None else values.astype(dtype)

    def __iter__(self):
        for _, chunk in self._table.iter_chunks(
            self._table._spool.shard_rows
        ):
            yield from chunk


class SpooledEdgeTable(_SpooledBase):
    """Spool-backed twin of :class:`~repro.tables.EdgeTable`."""

    def __init__(self, name, spool, key, shards, num_tail_nodes,
                 num_head_nodes, directed):
        super().__init__(spool, key, shards)
        self.name = str(name)
        self.num_tail_nodes = int(num_tail_nodes)
        self.num_head_nodes = int(num_head_nodes)
        self.directed = bool(directed)

    def __repr__(self):
        return (
            f"SpooledEdgeTable(name={self.name!r}, m={len(self)}, "
            f"n_tail={self.num_tail_nodes}, n_head={self.num_head_nodes}, "
            f"shards={len(self._shards)})"
        )

    @property
    def num_edges(self):
        return len(self)

    @property
    def is_bipartite(self):
        return self.num_tail_nodes != self.num_head_nodes

    @property
    def num_nodes(self):
        if self.is_bipartite:
            raise ValueError(
                f"ET {self.name!r} is bipartite; use num_tail_nodes / "
                "num_head_nodes"
            )
        return self.num_tail_nodes

    def _read_shard(self, index):
        tails = _load(
            self._spool._part_path(index, self._key, "tails"), "i"
        )
        heads = _load(
            self._spool._part_path(index, self._key, "heads"), "i"
        )
        return tails, heads

    def read_range(self, start, stop):
        """``(tails, heads)`` of edge ids ``[start, stop)``."""
        start, stop = int(start), int(stop)
        if not 0 <= start <= stop <= len(self):
            raise IndexError(
                f"ET {self.name!r}: range [{start}, {stop}) out of "
                f"bounds [0, {len(self)})"
            )
        tails_parts, heads_parts = [], []
        for index, lo, hi in self._ranges(start, stop):
            tails, heads = self._load_shard(index)
            tails_parts.append(tails[lo:hi])
            heads_parts.append(heads[lo:hi])
        if not tails_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        if len(tails_parts) == 1:
            return np.asarray(tails_parts[0]), np.asarray(heads_parts[0])
        return np.concatenate(tails_parts), np.concatenate(heads_parts)

    def tails_range(self, start, stop):
        return self.read_range(start, stop)[0]

    def heads_range(self, start, stop):
        return self.read_range(start, stop)[1]

    def iter_chunks(self, chunk_size, start=0, stop=None):
        """Same contract as ``EdgeTable.iter_chunks``."""
        chunk_size = int(chunk_size)
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        m = len(self)
        start = int(start)
        stop = m if stop is None else min(int(stop), m)
        if not 0 <= start <= m:
            raise IndexError(
                f"ET {self.name!r}: start {start} out of range [0, {m}]"
            )
        for lo in range(start, stop, chunk_size):
            hi = min(lo + chunk_size, stop)
            tails, heads = self.read_range(lo, hi)
            yield lo, tails, heads

    def to_edge_table(self):
        """Materialise (global stages only)."""
        from ..tables import EdgeTable

        tails, heads = self.read_range(0, len(self))
        return EdgeTable(
            self.name,
            tails,
            heads,
            num_tail_nodes=self.num_tail_nodes,
            num_head_nodes=self.num_head_nodes,
            directed=self.directed,
        )
