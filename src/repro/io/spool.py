"""Disk spool backing the sharded executor (out-of-core tables).

The sharded executor never holds a whole table in memory: every
property / edge table lands in a :class:`TableSpool` as per-shard
``.npy`` part files, one shard directory per id-range
``[i*shard_rows, (i+1)*shard_rows)``.  :class:`SpooledPropertyTable`
and :class:`SpooledEdgeTable` then expose the *exact* table interface
the streaming exporters consume (``iter_chunks`` with global chunk
starts, ``values`` with a real dtype, ``gather``), loading at most one
shard plus one chunk at a time — which is how the sharded pipeline
reuses the in-memory sinks unchanged and inherits their byte-identity
guarantee.

Each shard directory carries its own ``manifest.json``; the spool's
root manifest is their
:func:`~repro.io.streaming.merge_shard_manifests` merge, making the
spool a self-describing on-disk graph fragment store.

The spool is also the IPC boundary of the process backend: spools,
spooled tables and :class:`SpillView` handles pickle as *paths* (no
data), so worker processes can write part files straight into the
shard directories and the parent only records the acked metadata.
:class:`SortedRuns` adds the out-of-core primitive for the remaining
global stages: sorted spill runs with a vectorised k-way merge
(optionally dropping duplicates), bounded by the run size.
"""

from __future__ import annotations

import json
import shutil
import zlib
from pathlib import Path

import numpy as np

from .streaming import merge_shard_manifests

__all__ = [
    "LazyColumn",
    "SortedRuns",
    "SpillView",
    "SpooledEdgeTable",
    "SpooledPropertyTable",
    "TableSpool",
    "dedup_first_occurrence",
    "merge_sorted_runs",
    "spill_array",
    "spill_create",
    "spill_seal",
    "verify_digest",
    "SHARD_MANIFEST_NAME",
]

SHARD_MANIFEST_NAME = "manifest.json"


def _dtype_token(dtype):
    dtype = np.dtype(dtype)
    return "object" if dtype.kind == "O" else dtype.str


def _save(path, array):
    path.parent.mkdir(parents=True, exist_ok=True)
    np.save(path, array, allow_pickle=array.dtype.kind == "O")


def _digest(root, path):
    """Size + CRC32 of one part file, keyed by its spool-relative path
    — the integrity record the checkpoint ledger verifies on resume."""
    crc = 0
    size = 0
    with open(path, "rb") as handle:
        while True:
            block = handle.read(1 << 20)
            if not block:
                break
            size += len(block)
            crc = zlib.crc32(block, crc)
    return {
        "path": path.relative_to(root).as_posix(),
        "bytes": size,
        "crc": crc,
    }


def verify_digest(root, meta):
    """True when the part file named by a digest dict still matches
    its recorded size and CRC (missing/short/corrupt -> False)."""
    root = Path(root)
    path = root / meta["path"]
    try:
        fresh = _digest(root, path)
    except OSError:
        return False
    return (fresh["bytes"] == int(meta["bytes"])
            and fresh["crc"] == int(meta["crc"]))


def _load(path, dtype_kind):
    return np.load(path, allow_pickle=dtype_kind == "O")


class SpillView:
    """Lazy, closable, picklable view of one spilled numeric array.

    The view holds only a *path*; the backing memory map opens on first
    access and is released by :meth:`close` (the spool closes every
    view it handed out before removing its directory, so no reader is
    left holding an mmap of a deleted file).  Pickling ships the path,
    never the data — which is what lets worker processes slice spilled
    state (pair codes, degree offsets, matching maps) on demand.
    """

    __slots__ = ("path", "_mmap")

    def __init__(self, path):
        self.path = str(path)
        self._mmap = None

    @property
    def array(self):
        """The memory-mapped ndarray (opened lazily)."""
        if self._mmap is None:
            self._mmap = np.load(self.path, mmap_mode="r")
        return self._mmap

    @property
    def dtype(self):
        return self.array.dtype

    def __len__(self):
        return len(self.array)

    def __getitem__(self, item):
        return self.array[item]

    def __array__(self, dtype=None, copy=None):
        values = np.asarray(self.array)
        return values if dtype is None else values.astype(dtype)

    def close(self):
        """Release the mmap handle (reopens lazily if touched again)."""
        view = self._mmap
        self._mmap = None
        if view is not None:
            handle = getattr(view, "_mmap", None)
            if handle is not None:
                handle.close()

    def __getstate__(self):
        return self.path

    def __setstate__(self, state):
        self.path = state
        self._mmap = None

    def __repr__(self):
        state = "open" if self._mmap is not None else "closed"
        return f"SpillView({self.path!r}, {state})"


def spill_array(view):
    """The ndarray behind a spill result (memmap for :class:`SpillView`,
    the array itself for in-memory spills)."""
    if isinstance(view, SpillView):
        return view.array
    return np.asarray(view)


def spill_create(spill, name, rows, dtype):
    """A writable array of ``rows`` for incremental fills.

    Disk-backed spillers hand out a writable memmap under ``name``;
    the identity spill falls back to ``np.empty``.  Pair with
    :func:`spill_seal` once filled.
    """
    create = getattr(spill, "create", None)
    if create is None:
        return np.empty(int(rows), dtype=dtype)
    return create(name, rows, dtype)


def spill_seal(spill, name, array):
    """Seal an array from :func:`spill_create` into a read view."""
    seal = getattr(spill, "seal", None)
    if seal is None:
        return array
    return seal(name, array)


class _Spiller:
    """Namespaced ``spill(name, array)`` with an incremental-fill path."""

    def __init__(self, spool, prefix):
        self._spool = spool
        self._prefix = str(prefix)

    def __call__(self, name, array):
        return self._spool.spill(f"{self._prefix}.{name}", array)

    def create(self, name, rows, dtype):
        """Writable memmap for incremental fills (external merges)."""
        return self._spool.create_spill(
            f"{self._prefix}.{name}", rows, dtype
        )

    def seal(self, name, array):
        """Flush + close a created memmap; reopen as a read view."""
        return self._spool.seal_spill(f"{self._prefix}.{name}", array)


class TableSpool:
    """Per-shard ``.npy`` storage for the sharded executor.

    Parameters
    ----------
    directory:
        spool root; shard ``i`` lives in ``shards/{i:05d}/``.
    shard_rows:
        rows per shard — the memory bound of the whole pipeline.
    """

    def __init__(self, directory, shard_rows):
        self.directory = Path(directory)
        self.shard_rows = int(shard_rows)
        if self.shard_rows < 1:
            raise ValueError("shard_rows must be >= 1")
        #: table key -> {"kind", "role", "shards": [per-shard entry]}
        self._tables = {}
        #: scratch path -> SpillView handed out (closed before cleanup)
        self._views = {}

    def __getstate__(self):
        # Workers get a metadata-free clone: paths + geometry only.
        # Table bookkeeping and view registries stay in the parent,
        # which is the only process that records shards or cleans up.
        return {
            "directory": str(self.directory),
            "shard_rows": self.shard_rows,
        }

    def __setstate__(self, state):
        self.directory = Path(state["directory"])
        self.shard_rows = state["shard_rows"]
        self._tables = {}
        self._views = {}

    # -- geometry ----------------------------------------------------------

    def shard_bounds(self, count):
        """Contiguous ``(lo, hi)`` shard ranges covering ``count`` rows.

        A zero-row table still gets one (empty) shard, so its dtype is
        recorded on disk — the empty-shard contract.
        """
        count = int(count)
        if count == 0:
            return [(0, 0)]
        return [
            (lo, min(lo + self.shard_rows, count))
            for lo in range(0, count, self.shard_rows)
        ]

    def shard_dir(self, index):
        return self.directory / "shards" / f"{index:05d}"

    def _part_path(self, index, key, column=None):
        stem = key if column is None else f"{key}.{column}"
        return self.shard_dir(index) / f"{stem}.npy"

    # -- writes ------------------------------------------------------------

    def _entry_list(self, key, kind, **meta):
        entry = self._tables.setdefault(
            key, {"kind": kind, "shards": [], **meta}
        )
        if entry["kind"] != kind:
            raise ValueError(
                f"table {key!r} already spooled with kind "
                f"{entry['kind']!r}"
            )
        return entry

    def save_property_part(self, index, key, values):
        """Persist one shard's part *file* (any process; no metadata).

        Workers call this and ack the returned metadata dict, which
        the parent records in shard order via
        :meth:`record_property_shard` — the spool files are the IPC
        channel, the queue carries only this dict.
        """
        values = np.asarray(values)
        path = self._part_path(index, key)
        _save(path, values)
        return {
            "rows": int(values.size),
            "dtype": _dtype_token(values.dtype),
            "files": [_digest(self.directory, path)],
        }

    def record_property_shard(self, key, index, meta, role="property"):
        """Record one acked property-shard part (in shard order)."""
        entry = self._entry_list(key, "property", role=role)
        if len(entry["shards"]) != index:
            raise ValueError(
                f"table {key!r}: shard {index} written out of order "
                f"(expected {len(entry['shards'])})"
            )
        entry["shards"].append(
            {"rows": int(meta["rows"]), "dtype": meta["dtype"]}
        )

    def write_property_shard(self, key, index, values, role="property"):
        """Persist one id-range shard of a property column."""
        meta = self.save_property_part(index, key, values)
        self.record_property_shard(key, index, meta, role=role)
        return meta

    def save_edge_part(self, index, key, tails, heads):
        """Persist one edge shard's part files (any process)."""
        tails = np.ascontiguousarray(tails, dtype=np.int64)
        heads = np.ascontiguousarray(heads, dtype=np.int64)
        if tails.size != heads.size:
            raise ValueError(
                f"table {key!r}: shard {index} tails/heads differ"
            )
        tails_path = self._part_path(index, key, "tails")
        heads_path = self._part_path(index, key, "heads")
        _save(tails_path, tails)
        _save(heads_path, heads)
        return {
            "rows": int(tails.size),
            "files": [
                _digest(self.directory, tails_path),
                _digest(self.directory, heads_path),
            ],
        }

    def record_edge_shard(self, key, index, meta):
        """Record one acked edge-shard part (in shard order)."""
        entry = self._entry_list(key, "edge")
        if len(entry["shards"]) != index:
            raise ValueError(
                f"table {key!r}: shard {index} written out of order "
                f"(expected {len(entry['shards'])})"
            )
        entry["shards"].append({"rows": int(meta["rows"])})

    def write_edge_shard(self, key, index, tails, heads):
        """Persist one id-range shard of an edge table's columns."""
        meta = self.save_edge_part(index, key, tails, heads)
        self.record_edge_shard(key, index, meta)
        return meta

    def finish_property(self, key, name=None):
        """Seal a property table: a :class:`SpooledPropertyTable`."""
        entry = self._tables[key]
        shards = entry["shards"]
        dtype = next(
            (s["dtype"] for s in shards if s["rows"]), shards[0]["dtype"]
        )
        return SpooledPropertyTable(
            name or key, self, key, shards, np.dtype(
                object if dtype == "object" else dtype
            ),
        )

    def finish_edge(self, key, num_tail_nodes, num_head_nodes, directed,
                    name=None):
        """Seal an edge table: a :class:`SpooledEdgeTable`.

        Zero-shard tables get one empty ``int64`` shard so the on-disk
        dtype matches what chunked structure emission guarantees.
        """
        entry = self._tables.setdefault(key, {"kind": "edge", "shards": []})
        if not entry["shards"]:
            self.write_edge_shard(
                key, 0,
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
            )
        entry.update(
            num_tail_nodes=int(num_tail_nodes),
            num_head_nodes=int(num_head_nodes),
            directed=bool(directed),
        )
        return SpooledEdgeTable(
            name or key, self, key, entry["shards"],
            int(num_tail_nodes), int(num_head_nodes), bool(directed),
        )

    # -- scratch (transient global state: pre-match structures, codes) ------

    def scratch_path(self, name):
        return self.directory / "scratch" / f"{name}.npy"

    def spill(self, name, array):
        """Park a whole-table array on disk; hand back a bounded view.

        Numeric arrays come back as a :class:`SpillView` (pages load
        on demand), which is how genuinely-global stages — sampled
        pair codes, degree offsets, matching maps — stay out of the
        RSS budget.  Every view is registered so :meth:`cleanup` can
        release its mmap handle before removing the directory.
        """
        array = np.asarray(array)
        path = self.scratch_path(name)
        _save(path, array)
        if array.dtype.kind == "O":
            return array  # object arrays cannot be mapped; keep as is
        return self._register_view(path)

    def _register_view(self, path):
        view = SpillView(path)
        self._views[view.path] = view
        return view

    def create_spill(self, name, rows, dtype):
        """A writable scratch memmap for incremental fills."""
        path = self.scratch_path(name)
        path.parent.mkdir(parents=True, exist_ok=True)
        return np.lib.format.open_memmap(
            path, mode="w+", dtype=np.dtype(dtype), shape=(int(rows),)
        )

    def seal_spill(self, name, array):
        """Flush + close a created memmap; reopen it as a read view."""
        path = self.scratch_path(name)
        if isinstance(array, np.memmap):
            array.flush()
            handle = getattr(array, "_mmap", None)
            if handle is not None:
                handle.close()
        else:
            _save(path, np.asarray(array))
        return self._register_view(path)

    def spiller(self, prefix):
        """A ``spill(name, array)`` callable namespaced by ``prefix``."""
        return _Spiller(self, prefix)

    def drop_scratch(self, prefix):
        """Delete all scratch files under ``prefix`` (post-match)."""
        scratch = self.directory / "scratch"
        if not scratch.exists():
            return
        for path in scratch.glob(f"{prefix}.*.npy"):
            view = self._views.pop(str(path), None)
            if view is not None:
                view.close()
            path.unlink()
        exact = self.scratch_path(prefix)
        if exact.exists():
            view = self._views.pop(str(exact), None)
            if view is not None:
                view.close()
            exact.unlink()

    # -- manifests ---------------------------------------------------------

    def shard_manifest(self, index):
        """The manifest dict of one shard directory."""
        tables = {}
        for key, entry in self._tables.items():
            shards = entry["shards"]
            if index >= len(shards):
                continue
            shard = shards[index]
            if entry["kind"] == "property":
                tables[key] = {
                    "kind": "property",
                    "role": entry.get("role", "property"),
                    "rows": shard["rows"],
                    "dtype": shard["dtype"],
                }
            else:
                tables[key] = {
                    "kind": "edge",
                    "rows": shard["rows"],
                    "num_tail_nodes": entry["num_tail_nodes"],
                    "num_head_nodes": entry["num_head_nodes"],
                    "directed": entry["directed"],
                }
        return {"version": 1, "shard": index, "tables": tables}

    def write_manifests(self):
        """Write per-shard manifests and their merged root manifest."""
        num_shards = max(
            (len(e["shards"]) for e in self._tables.values()), default=0
        )
        manifests = []
        for index in range(num_shards):
            manifest = self.shard_manifest(index)
            manifests.append(manifest)
            shard_dir = self.shard_dir(index)
            shard_dir.mkdir(parents=True, exist_ok=True)
            with open(
                shard_dir / SHARD_MANIFEST_NAME, "w", encoding="utf-8"
            ) as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
                handle.write("\n")
        if not manifests:
            return None
        merged = merge_shard_manifests(manifests)
        self.directory.mkdir(parents=True, exist_ok=True)
        with open(
            self.directory / SHARD_MANIFEST_NAME, "w", encoding="utf-8"
        ) as handle:
            json.dump(merged, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return merged

    def close_views(self):
        """Release every mmap handle this spool handed out.

        Readers must not hold maps of files :meth:`cleanup` is about
        to delete; views reopen lazily if touched again while the
        files still exist.
        """
        for view in self._views.values():
            view.close()

    def cleanup(self):
        self.close_views()
        self._views = {}
        shutil.rmtree(self.directory, ignore_errors=True)


class _SpooledBase:
    """Shared shard-walking machinery (one-shard LRU cache)."""

    def __init__(self, spool, key, shards):
        self._spool = spool
        self._key = key
        self._shards = shards
        self._rows = sum(s["rows"] for s in shards)
        # Single-slot cache stored as one tuple so concurrent readers
        # (worker waves) can never observe a torn index/payload pair.
        self._cache = None

    def __getstate__(self):
        # Drop the shard cache: it may hold a whole shard's arrays,
        # and worker processes re-read from the spool files anyway.
        state = dict(self.__dict__)
        state["_cache"] = None
        return state

    def __len__(self):
        return self._rows

    def _load_shard(self, index):
        cached = self._cache
        if cached is not None and cached[0] == index:
            return cached[1]
        arrays = self._read_shard(index)
        self._cache = (index, arrays)
        return arrays

    def _shard_of(self, row):
        return int(row) // self._spool.shard_rows

    def _ranges(self, start, stop):
        """Yield ``(shard_index, local_lo, local_hi)`` covering a range."""
        rows = self._spool.shard_rows
        row = start
        while row < stop:
            index = row // rows
            local_lo = row - index * rows
            local_hi = min(stop - index * rows, rows)
            yield index, local_lo, local_hi
            row = index * rows + local_hi


class SpooledPropertyTable(_SpooledBase):
    """Spool-backed twin of :class:`~repro.tables.PropertyTable`.

    Implements the slice of the PT interface the exporters and the
    executor touch; ``values`` is a :class:`LazyColumn`, never a whole
    in-memory array.
    """

    def __init__(self, name, spool, key, shards, dtype):
        super().__init__(spool, key, shards)
        self.name = str(name)
        self.dtype = np.dtype(dtype)

    def __repr__(self):
        return (
            f"SpooledPropertyTable(name={self.name!r}, n={len(self)}, "
            f"dtype={self.dtype}, shards={len(self._shards)})"
        )

    @property
    def values(self):
        return LazyColumn(self)

    def _read_shard(self, index):
        return _load(
            self._spool._part_path(index, self._key), self.dtype.kind
        )

    def read_range(self, start, stop):
        """Rows ``[start, stop)`` as one array (bounded by the range)."""
        start, stop = int(start), int(stop)
        if not 0 <= start <= stop <= len(self):
            raise IndexError(
                f"PT {self.name!r}: range [{start}, {stop}) out of "
                f"bounds [0, {len(self)})"
            )
        parts = [
            self._load_shard(index)[lo:hi]
            for index, lo, hi in self._ranges(start, stop)
        ]
        if not parts:
            return np.empty(0, dtype=self.dtype)
        if len(parts) == 1:
            return np.asarray(parts[0])
        return np.concatenate(parts)

    def iter_chunks(self, chunk_size, start=0, stop=None):
        """Same contract as ``PropertyTable.iter_chunks`` — global
        chunk starts, chunk boundaries independent of shard geometry."""
        chunk_size = int(chunk_size)
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        n = len(self)
        start = int(start)
        stop = n if stop is None else min(int(stop), n)
        if not 0 <= start <= n:
            raise IndexError(
                f"PT {self.name!r}: start {start} out of range [0, {n}]"
            )
        for lo in range(start, stop, chunk_size):
            hi = min(lo + chunk_size, stop)
            yield lo, self.read_range(lo, hi)

    def gather(self, instance_ids):
        """Vectorised lookup, streamed shard by shard."""
        ids = np.asarray(instance_ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= len(self)):
            raise IndexError(
                f"PT {self.name!r}: ids out of range [0, {len(self)})"
            )
        out = np.empty(ids.size, dtype=self.dtype)
        if ids.size == 0:
            return out
        rows = self._spool.shard_rows
        shard_idx = ids // rows
        for index in np.unique(shard_idx):
            mask = shard_idx == index
            values = self._load_shard(int(index))
            out[mask] = values[ids[mask] - int(index) * rows]
        return out

    def to_property_table(self):
        """Materialise (global stages: correlated matching, validation)."""
        from ..tables import PropertyTable

        return PropertyTable(self.name, self.read_range(0, len(self)))


class LazyColumn:
    """Array-like view over a spooled property column.

    Supports exactly what the chunked writers do with ``.values``:
    ``len``, ``dtype``, slicing (returns a real ndarray), and
    ``np.asarray`` for global consumers.
    """

    def __init__(self, table):
        self._table = table
        self.dtype = table.dtype

    def __len__(self):
        return len(self._table)

    def __getitem__(self, item):
        if isinstance(item, slice):
            start, stop, step = item.indices(len(self._table))
            values = self._table.read_range(start, stop)
            return values if step == 1 else values[::step]
        index = int(item)
        if index < 0:
            index += len(self._table)
        return self._table.read_range(index, index + 1)[0]

    def __array__(self, dtype=None, copy=None):
        values = self._table.read_range(0, len(self._table))
        return values if dtype is None else values.astype(dtype)

    def __iter__(self):
        for _, chunk in self._table.iter_chunks(
            self._table._spool.shard_rows
        ):
            yield from chunk


class SpooledEdgeTable(_SpooledBase):
    """Spool-backed twin of :class:`~repro.tables.EdgeTable`."""

    def __init__(self, name, spool, key, shards, num_tail_nodes,
                 num_head_nodes, directed):
        super().__init__(spool, key, shards)
        self.name = str(name)
        self.num_tail_nodes = int(num_tail_nodes)
        self.num_head_nodes = int(num_head_nodes)
        self.directed = bool(directed)

    def __repr__(self):
        return (
            f"SpooledEdgeTable(name={self.name!r}, m={len(self)}, "
            f"n_tail={self.num_tail_nodes}, n_head={self.num_head_nodes}, "
            f"shards={len(self._shards)})"
        )

    @property
    def num_edges(self):
        return len(self)

    @property
    def is_bipartite(self):
        return self.num_tail_nodes != self.num_head_nodes

    @property
    def num_nodes(self):
        if self.is_bipartite:
            raise ValueError(
                f"ET {self.name!r} is bipartite; use num_tail_nodes / "
                "num_head_nodes"
            )
        return self.num_tail_nodes

    def _read_shard(self, index):
        tails = _load(
            self._spool._part_path(index, self._key, "tails"), "i"
        )
        heads = _load(
            self._spool._part_path(index, self._key, "heads"), "i"
        )
        return tails, heads

    def read_range(self, start, stop):
        """``(tails, heads)`` of edge ids ``[start, stop)``."""
        start, stop = int(start), int(stop)
        if not 0 <= start <= stop <= len(self):
            raise IndexError(
                f"ET {self.name!r}: range [{start}, {stop}) out of "
                f"bounds [0, {len(self)})"
            )
        tails_parts, heads_parts = [], []
        for index, lo, hi in self._ranges(start, stop):
            tails, heads = self._load_shard(index)
            tails_parts.append(tails[lo:hi])
            heads_parts.append(heads[lo:hi])
        if not tails_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        if len(tails_parts) == 1:
            return np.asarray(tails_parts[0]), np.asarray(heads_parts[0])
        return np.concatenate(tails_parts), np.concatenate(heads_parts)

    def tails_range(self, start, stop):
        return self.read_range(start, stop)[0]

    def heads_range(self, start, stop):
        return self.read_range(start, stop)[1]

    def iter_chunks(self, chunk_size, start=0, stop=None):
        """Same contract as ``EdgeTable.iter_chunks``."""
        chunk_size = int(chunk_size)
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        m = len(self)
        start = int(start)
        stop = m if stop is None else min(int(stop), m)
        if not 0 <= start <= m:
            raise IndexError(
                f"ET {self.name!r}: start {start} out of range [0, {m}]"
            )
        for lo in range(start, stop, chunk_size):
            hi = min(lo + chunk_size, stop)
            tails, heads = self.read_range(lo, hi)
            yield lo, tails, heads

    def to_edge_table(self):
        """Materialise (global stages only)."""
        from ..tables import EdgeTable

        tails, heads = self.read_range(0, len(self))
        return EdgeTable(
            self.name,
            tails,
            heads,
            num_tail_nodes=self.num_tail_nodes,
            num_head_nodes=self.num_head_nodes,
            directed=self.directed,
        )


# -- external sort-merge (out-of-core dedup primitive) ----------------------


class SortedRuns:
    """Out-of-core sorted runs with a duplicate-dropping k-way merge.

    The primitive behind every remaining global dedup stage: callers
    :meth:`push` record blocks in any order; each full buffer is
    sorted (lexicographically by ``(primary, secondary)``) and spilled
    as one *run* through the ``spill`` callable — the executor's disk
    spiller, or the identity for in-memory use.  :meth:`merge` then
    streams the global sorted order in bounded blocks, so peak memory
    is O(run_rows), never O(total).

    ``unique`` mode drops duplicate primaries, keeping the record with
    the smallest secondary — for ``(pair_code, edge_idx)`` records
    that is exactly ``np.unique(keys, return_index=True)``'s
    first-occurrence rule, which is what lets R-MAT ``simplify`` and
    the bipartite stub dedup replicate ``EdgeTable.deduplicated()``
    bit for bit without a resident table.
    """

    def __init__(self, spill, prefix, run_rows, unique=False):
        self._spill = spill
        self._prefix = str(prefix)
        self.run_rows = max(int(run_rows), 1024)
        self.unique = bool(unique)
        self._runs = []          # (primary_view, secondary_view | None)
        self._buf_primary = []
        self._buf_secondary = []
        self._buffered = 0

    def __len__(self):
        return len(self._runs)

    def push(self, primary, secondary=None):
        """Record a block of (primary[, secondary]) values."""
        primary = np.asarray(primary)
        if primary.size == 0:
            return
        self._buf_primary.append(primary)
        if secondary is not None:
            self._buf_secondary.append(np.asarray(secondary))
        elif self._buf_secondary:
            raise ValueError("mixed single/pair pushes")
        self._buffered += primary.size
        if self._buffered >= self.run_rows:
            self.flush()

    def flush(self):
        """Sort and spill the buffered block as one run."""
        if not self._buffered:
            return
        primary = np.concatenate(self._buf_primary)
        secondary = (
            np.concatenate(self._buf_secondary)
            if self._buf_secondary else None
        )
        self._buf_primary = []
        self._buf_secondary = []
        self._buffered = 0
        if secondary is None:
            primary = (
                np.unique(primary) if self.unique else np.sort(primary)
            )
        else:
            order = np.lexsort((secondary, primary))
            primary = primary[order]
            secondary = secondary[order]
            if self.unique:
                _, first = np.unique(primary, return_index=True)
                primary = primary[first]
                secondary = secondary[first]
        tag = f"{self._prefix}.run{len(self._runs)}"
        self._runs.append((
            self._spill(f"{tag}.primary", primary),
            None if secondary is None
            else self._spill(f"{tag}.secondary", secondary),
        ))

    def merge(self, block_rows=None):
        """Yield ``(primary, secondary|None)`` blocks, globally sorted.

        Re-iterable: runs live on disk (or in the identity spill), so
        a counting pass and an emission pass can both merge.
        """
        self.flush()
        return merge_sorted_runs(
            self._runs,
            block_rows or max(self.run_rows // max(len(self._runs), 1),
                              1024),
            unique=self.unique,
        )

    def total(self):
        """Total merged rows (post-dedup when ``unique``)."""
        return sum(block[0].size for block in self.merge())

    def cleanup(self):
        """Release the spilled runs: views closed, files unlinked.

        Call once the merge output has been consumed — runs are
        intermediate state, and eager removal keeps the dedup's disk
        footprint bounded by one live pass."""
        runs, self._runs = self._runs, []
        self._buf_primary = []
        self._buf_secondary = []
        self._buffered = 0
        for primary, secondary in runs:
            for view in (primary, secondary):
                close = getattr(view, "close", None)
                if close is not None:
                    close()
                path = getattr(view, "path", None)
                if path is not None:
                    Path(path).unlink(missing_ok=True)


def dedup_first_occurrence(spill, prefix, blocks, run_rows):
    """First-occurrence dedup of packed edge codes, out of core.

    ``blocks`` yields ``(codes, edge_ids)`` pairs in any chunking; the
    result keeps, for every distinct code, the record with the smallest
    edge id, ordered by that id — exactly
    ``np.unique(codes, return_index=True)`` + ``first.sort()`` on the
    concatenated input, which is the semantics of
    ``EdgeTable.deduplicated()`` and the bipartite pair dedup.  Two
    spilled sort-merge passes (by code, then by edge id) bound memory
    at O(run_rows); returns ``(total, codes_view)`` with the final code
    sequence sealed behind the spill.
    """
    by_code = SortedRuns(spill, f"{prefix}.bycode", run_rows, unique=True)
    for codes, edge_ids in blocks:
        by_code.push(codes, edge_ids)
    by_order = SortedRuns(spill, f"{prefix}.byorder", run_rows)
    total = 0
    for codes, edge_ids in by_code.merge():
        by_order.push(edge_ids, codes)
        total += codes.size
    by_code.cleanup()
    final = spill_create(spill, f"{prefix}.codes", total, np.int64)
    pos = 0
    for _, codes in by_order.merge():
        final[pos:pos + codes.size] = codes
        pos += codes.size
    by_order.cleanup()
    return total, spill_seal(spill, f"{prefix}.codes", final)


def merge_sorted_runs(runs, block_rows, unique=False):
    """Vectorised k-way merge of individually sorted runs.

    Loads one bounded block per run and repeatedly emits everything
    strictly below the *cut* — the smallest last-loaded primary among
    runs with unloaded data — so each emitted block is final: no later
    record can sort before it, and (in ``unique`` mode) no duplicate
    primary spans two emitted blocks.
    """
    block_rows = max(int(block_rows), 1)
    state = []  # [pos, primary_view, secondary_view, buf_p, buf_s]
    for primary, secondary in runs:
        rows = len(primary)
        if rows:
            state.append([
                0, primary, secondary,
                np.empty(0, spill_array(primary).dtype), None,
            ])

    def load(entry, count):
        pos, primary, secondary = entry[0], entry[1], entry[2]
        hi = min(pos + count, len(primary))
        entry[3] = np.concatenate([entry[3], np.asarray(primary[pos:hi])])
        if secondary is not None:
            piece = np.asarray(secondary[pos:hi])
            entry[4] = (
                piece if entry[4] is None
                else np.concatenate([entry[4], piece])
            )
        entry[0] = hi

    while state:
        for entry in state:
            if entry[3].size == 0 and entry[0] < len(entry[1]):
                load(entry, block_rows)
        state = [e for e in state if e[3].size]
        if not state:
            return
        pending = [e for e in state if e[0] < len(e[1])]
        if pending:
            cut = min(e[3][-1] for e in pending)
            counts = [
                int(np.searchsorted(e[3], cut, side="left"))
                for e in state
            ]
            if not any(counts):
                # Everything buffered ties the cut; widen the
                # constraining runs until the tie breaks (or they
                # exhaust and the final flush below handles it).
                for entry in pending:
                    if entry[3][-1] == cut:
                        load(entry, block_rows)
                continue
        else:
            counts = [e[3].size for e in state]
        out_p = np.concatenate([e[3][:c] for e, c in zip(state, counts)])
        has_secondary = state[0][4] is not None
        out_s = (
            np.concatenate([e[4][:c] for e, c in zip(state, counts)])
            if has_secondary else None
        )
        for entry, count in zip(state, counts):
            entry[3] = entry[3][count:]
            if has_secondary:
                entry[4] = entry[4][count:]
        if out_s is None:
            out_p = np.unique(out_p) if unique else np.sort(out_p)
        else:
            order = np.lexsort((out_s, out_p))
            out_p = out_p[order]
            out_s = out_s[order]
            if unique:
                _, first = np.unique(out_p, return_index=True)
                out_p = out_p[first]
                out_s = out_s[first]
        yield out_p, out_s
