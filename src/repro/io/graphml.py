"""Minimal GraphML export (graph-database import format).

Neo4j, Sparksee and most property-graph tools ingest GraphML; this
writer emits a single monopartite edge type with node and edge
properties as GraphML keys.
"""

from __future__ import annotations

from pathlib import Path
from xml.sax.saxutils import escape

import numpy as np

__all__ = ["write_graphml"]

_HEADER = (
    '<?xml version="1.0" encoding="UTF-8"?>\n'
    '<graphml xmlns="http://graphml.graphdrawing.org/xmlns">\n'
)


def _type_tag(values):
    if values.dtype.kind in ("i", "u"):
        return "long"
    if values.dtype.kind == "f":
        return "double"
    if values.dtype.kind == "b":
        return "boolean"
    return "string"


def write_graphml(result, edge_name, path):
    """Write one edge type (and its endpoint node type) as GraphML."""
    edge = result.schema.edge_type(edge_name)
    if not result.edges(edge_name).is_bipartite \
            and edge.tail_type != edge.head_type:
        raise ValueError("write_graphml expects a monopartite edge type")
    table = result.edges(edge_name)
    node_type = result.schema.node_type(edge.tail_type)
    path = Path(path)

    node_props = {
        prop.name: result.node_property(edge.tail_type, prop.name).values
        for prop in node_type.properties
    }
    edge_props = {
        prop.name: result.edge_property(edge_name, prop.name).values
        for prop in edge.properties
    }

    with path.open("w") as handle:
        handle.write(_HEADER)
        for name, values in node_props.items():
            handle.write(
                f'  <key id="n_{name}" for="node" attr.name="{name}" '
                f'attr.type="{_type_tag(values)}"/>\n'
            )
        for name, values in edge_props.items():
            handle.write(
                f'  <key id="e_{name}" for="edge" attr.name="{name}" '
                f'attr.type="{_type_tag(values)}"/>\n'
            )
        direction = "directed" if table.directed else "undirected"
        handle.write(
            f'  <graph id="{edge_name}" edgedefault="{direction}">\n'
        )
        count = result.num_nodes(edge.tail_type)
        for i in range(count):
            handle.write(f'    <node id="n{i}">\n')
            for name, values in node_props.items():
                handle.write(
                    f'      <data key="n_{name}">'
                    f'{escape(str(values[i]))}</data>\n'
                )
            handle.write("    </node>\n")
        for edge_id, (tail, head) in enumerate(
            zip(table.tails, table.heads)
        ):
            handle.write(
                f'    <edge id="e{edge_id}" source="n{int(tail)}" '
                f'target="n{int(head)}">\n'
            )
            for name, values in edge_props.items():
                handle.write(
                    f'      <data key="e_{name}">'
                    f'{escape(str(values[edge_id]))}</data>\n'
                )
            handle.write("    </edge>\n")
        handle.write("  </graph>\n</graphml>\n")
    return path
