"""Minimal GraphML export (graph-database import format).

Neo4j, Sparksee and most property-graph tools ingest GraphML; this
writer emits a single monopartite edge type with node and edge
properties as GraphML keys.

Nodes and edges are written in id-range chunks: each chunk fills a
precomputed per-row ``%``-template from batch-escaped columns
(:func:`repro.io.chunks.xml_escape_column`), byte-identical to the
historical per-element ``xml.sax.saxutils.escape`` loop but without
per-row Python overhead or whole-document buffering.
"""

from __future__ import annotations

from pathlib import Path

from .chunks import (
    DEFAULT_CHUNK_SIZE,
    chunk_ranges,
    id_strings,
    open_text,
    stringify_column,
    xml_escape_column,
)

__all__ = ["write_graphml"]

_HEADER = (
    '<?xml version="1.0" encoding="UTF-8"?>\n'
    '<graphml xmlns="http://graphml.graphdrawing.org/xmlns">\n'
)


def _type_tag(values):
    if values.dtype.kind in ("i", "u"):
        return "long"
    if values.dtype.kind == "f":
        return "double"
    if values.dtype.kind == "b":
        return "boolean"
    return "string"


def _element_template(open_line, props, prefix, close_line):
    """Per-row template: opening tag, one ``<data>`` line per
    property, closing tag.  Only the ``%s`` slots format — literal
    ``%`` in property names is escaped."""
    lines = [open_line]
    for name in props:
        key = f"{prefix}_{name}".replace("%", "%%")
        lines.append(f'      <data key="{key}">%s</data>\n')
    lines.append(close_line)
    return "".join(lines)


def _escaped_columns(lo, hi, props):
    return [
        xml_escape_column(stringify_column(values[lo:hi]))
        for values in props.values()
    ]


def write_graphml(result, edge_name, path,
                  chunk_size=DEFAULT_CHUNK_SIZE, compress=None):
    """Write one edge type (and its endpoint node type) as GraphML."""
    edge = result.schema.edge_type(edge_name)
    if not result.edges(edge_name).is_bipartite \
            and edge.tail_type != edge.head_type:
        raise ValueError("write_graphml expects a monopartite edge type")
    table = result.edges(edge_name)
    node_type = result.schema.node_type(edge.tail_type)
    path = Path(path)

    node_props = {
        prop.name: result.node_property(edge.tail_type, prop.name).values
        for prop in node_type.properties
    }
    edge_props = {
        prop.name: result.edge_property(edge_name, prop.name).values
        for prop in edge.properties
    }

    with open_text(path, "w", compress) as handle:
        handle.write(_HEADER)
        for name, values in node_props.items():
            handle.write(
                f'  <key id="n_{name}" for="node" attr.name="{name}" '
                f'attr.type="{_type_tag(values)}"/>\n'
            )
        for name, values in edge_props.items():
            handle.write(
                f'  <key id="e_{name}" for="edge" attr.name="{name}" '
                f'attr.type="{_type_tag(values)}"/>\n'
            )
        direction = "directed" if table.directed else "undirected"
        handle.write(
            f'  <graph id="{edge_name}" edgedefault="{direction}">\n'
        )
        node_template = _element_template(
            '    <node id="n%s">\n', node_props, "n",
            "    </node>\n",
        )
        count = result.num_nodes(edge.tail_type)
        for lo, hi in chunk_ranges(count, chunk_size):
            columns = [id_strings(lo, hi)]
            columns += _escaped_columns(lo, hi, node_props)
            handle.write(
                "".join(node_template % row for row in zip(*columns))
            )
        edge_template = _element_template(
            '    <edge id="e%s" source="n%s" target="n%s">\n',
            edge_props, "e", "    </edge>\n",
        )
        for lo, tails, heads in table.iter_chunks(chunk_size):
            hi = lo + len(tails)
            columns = [
                id_strings(lo, hi),
                list(map(str, tails.tolist())),
                list(map(str, heads.tolist())),
            ]
            columns += _escaped_columns(lo, hi, edge_props)
            handle.write(
                "".join(edge_template % row for row in zip(*columns))
            )
        handle.write("  </graph>\n</graphml>\n")
    return path
