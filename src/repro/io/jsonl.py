"""JSON-lines export: one record per node/edge instance.

The record-oriented view (ids joined with all their properties) that
document stores and streaming loaders expect.

Records are emitted in fixed-size id-range chunks through the
vectorised encoders of :mod:`repro.io.chunks` — numeric, bool, float
and datetime columns never touch per-row ``json.dumps`` — while
remaining byte-identical to the historical one-``dumps``-per-record
output (pinned by ``tests/golden/``).  JSONL is also the
null-preserving table format: ``write_property_table_jsonl`` /
``read_property_table_jsonl`` round-trip ``None`` and NaN exactly,
which CSV cannot.
"""

from __future__ import annotations

import json
from itertools import islice
from pathlib import Path

import numpy as np

from ..tables import EdgeTable, PropertyTable
from .chunks import (
    DEFAULT_CHUNK_SIZE,
    chunk_ranges,
    edge_range,
    format_json_records_chunk,
    id_strings,
    json_encode_column,
    open_text,
    property_range,
    table_stem,
)

__all__ = [
    "write_nodes_jsonl",
    "write_edges_jsonl",
    "export_graph_jsonl",
    "write_property_table_jsonl",
    "read_property_table_jsonl",
    "write_edge_table_jsonl",
    "read_edge_table_jsonl",
]


def _node_records_job(keys, columns, lo, hi):
    """Format one node-record chunk (module-level: runs in any worker).

    ``columns`` are value columns of the node type's PTs — spooled
    columns pickle as spool paths and page their own ``[lo:hi]`` slice
    worker-side.
    """
    encoded = [id_strings(lo, hi)] + [
        json_encode_column(col[lo:hi]) for col in columns
    ]
    return format_json_records_chunk(keys, encoded)


def _edge_records_job(keys, table, columns, lo, hi):
    """Format one edge-record chunk (module-level: runs in any worker)."""
    tails, heads = edge_range(table, lo, hi)
    encoded = [
        id_strings(lo, lo + len(tails)),
        json_encode_column(tails),
        json_encode_column(heads),
    ] + [
        json_encode_column(col[lo:lo + len(tails)]) for col in columns
    ]
    return format_json_records_chunk(keys, encoded)


def write_nodes_jsonl(graph, type_name, path,
                      chunk_size=DEFAULT_CHUNK_SIZE, compress=None,
                      pmap=None):
    """Write all instances of a node type as JSON lines.

    ``pmap`` (an ordered parallel map) offloads per-chunk record
    encoding to workers while this writer appends the results in chunk
    order — same bytes, formatting cost off the parent.
    """
    path = Path(path)
    prop_names = [
        p.name for p in graph.schema.node_type(type_name).properties
    ]
    columns = [
        graph.node_property(type_name, name).values
        for name in prop_names
    ]
    keys = ["id"] + prop_names
    with open_text(path, "w", compress) as handle:
        if pmap is None:
            for lo, hi in chunk_ranges(graph.num_nodes(type_name),
                                       chunk_size):
                encoded = [id_strings(lo, hi)] + [
                    json_encode_column(col[lo:hi]) for col in columns
                ]
                handle.write(format_json_records_chunk(keys, encoded))
        else:
            jobs = (
                (keys, columns, lo, hi)
                for lo, hi in chunk_ranges(
                    graph.num_nodes(type_name), chunk_size
                )
            )
            for text in pmap(_node_records_job, jobs):
                handle.write(text)
    return path


def write_edges_jsonl(graph, edge_name, path,
                      chunk_size=DEFAULT_CHUNK_SIZE, compress=None,
                      pmap=None):
    """Write all instances of an edge type as JSON lines."""
    path = Path(path)
    table = graph.edges(edge_name)
    prop_names = [
        p.name for p in graph.schema.edge_type(edge_name).properties
    ]
    columns = [
        graph.edge_property(edge_name, name).values
        for name in prop_names
    ]
    keys = ["id", "tail", "head"] + prop_names
    with open_text(path, "w", compress) as handle:
        if pmap is None:
            for lo, tails, heads in table.iter_chunks(chunk_size):
                encoded = [
                    id_strings(lo, lo + len(tails)),
                    json_encode_column(tails),
                    json_encode_column(heads),
                ] + [
                    json_encode_column(col[lo:lo + len(tails)])
                    for col in columns
                ]
                handle.write(format_json_records_chunk(keys, encoded))
        else:
            jobs = (
                (keys, table, columns, lo, hi)
                for lo, hi in chunk_ranges(table.num_edges, chunk_size)
            )
            for text in pmap(_edge_records_job, jobs):
                handle.write(text)
    return path


def export_graph_jsonl(graph, directory, chunk_size=DEFAULT_CHUNK_SIZE,
                       compress=False):
    """Export every type to ``<directory>/<TypeName>.jsonl``."""
    from .streaming import JsonlSink, export_graph

    sink = JsonlSink(directory, chunk_size=chunk_size, compress=compress)
    return export_graph(graph, sink)


# -- table-oriented JSONL (null-preserving round trips) ----------------------


def _property_table_job(table, lo, hi):
    """Format one PT-record chunk (module-level: runs in any worker)."""
    values = property_range(table, lo, hi)
    encoded = [
        id_strings(lo, lo + len(values)),
        json_encode_column(values),
    ]
    return format_json_records_chunk(["id", "value"], encoded)


def _edge_table_job(table, lo, hi):
    """Format one ET-record chunk (module-level: runs in any worker)."""
    tails, heads = edge_range(table, lo, hi)
    encoded = [
        id_strings(lo, lo + len(tails)),
        json_encode_column(tails),
        json_encode_column(heads),
    ]
    return format_json_records_chunk(["id", "tail", "head"], encoded)


def write_property_table_jsonl(table, path,
                               chunk_size=DEFAULT_CHUNK_SIZE,
                               compress=None, pmap=None):
    """Write a PT as ``{"id": i, "value": v}`` lines.

    Unlike CSV this representation distinguishes ``None`` from ``""``
    and preserves value types (bool, float — NaN included — and
    strings) without a sidecar dtype.
    """
    path = Path(path)
    with open_text(path, "w", compress) as handle:
        if pmap is None:
            for start, values in table.iter_chunks(chunk_size):
                encoded = [
                    id_strings(start, start + len(values)),
                    json_encode_column(values),
                ]
                handle.write(
                    format_json_records_chunk(["id", "value"], encoded)
                )
        else:
            jobs = (
                (table, lo, hi)
                for lo, hi in chunk_ranges(len(table), chunk_size)
            )
            for text in pmap(_property_table_job, jobs):
                handle.write(text)
    return path


def write_edge_table_jsonl(table, path, chunk_size=DEFAULT_CHUNK_SIZE,
                           compress=None, pmap=None):
    """Write an ET as ``{"id": i, "tail": t, "head": h}`` lines."""
    path = Path(path)
    with open_text(path, "w", compress) as handle:
        if pmap is None:
            for start, tails, heads in table.iter_chunks(chunk_size):
                encoded = [
                    id_strings(start, start + len(tails)),
                    json_encode_column(tails),
                    json_encode_column(heads),
                ]
                handle.write(
                    format_json_records_chunk(["id", "tail", "head"],
                                              encoded)
                )
        else:
            jobs = (
                (table, lo, hi)
                for lo, hi in chunk_ranges(table.num_edges, chunk_size)
            )
            for text in pmap(_edge_table_job, jobs):
                handle.write(text)
    return path


def _iter_record_chunks(path, chunk_size):
    with open_text(path, "r") as handle:
        while True:
            block = list(islice(handle, chunk_size))
            if not block:
                return
            yield [json.loads(line) for line in block]


def _coerce_values(values, dtype):
    """Build the value array for a JSONL-read column."""
    if dtype is not None:
        dtype = np.dtype(dtype)
        if dtype.kind == "O":
            return np.array(values, dtype=object)
        if dtype.kind == "M":
            return np.asarray(values, dtype=str).astype(dtype)
        return np.asarray(values).astype(dtype)
    # Inference: homogeneous primitive types map to tight dtypes,
    # anything mixed (or containing None) stays an object column.
    if not values:
        return np.empty(0, dtype=np.int64)
    types = {type(v) for v in values}
    if types == {bool}:
        return np.array(values, dtype=bool)
    if types == {int}:
        return np.array(values, dtype=np.int64)
    if types <= {int, float}:
        return np.array(values, dtype=np.float64)
    if types == {str}:
        return np.array(values, dtype=str)
    return np.array(values, dtype=object)


def read_property_table_jsonl(path, name=None, dtype=None,
                              chunk_size=DEFAULT_CHUNK_SIZE):
    """Read a PT written by :func:`write_property_table_jsonl`."""
    path = Path(path)
    values = []
    row = 0
    for records in _iter_record_chunks(path, chunk_size):
        for record in records:
            if record.get("id") != row:
                raise ValueError(
                    f"{path}: non-dense ids (expected {row}, "
                    f"got {record.get('id')})"
                )
            values.append(record["value"])
            row += 1
    return PropertyTable(
        name or table_stem(path), _coerce_values(values, dtype)
    )


def read_edge_table_jsonl(path, name=None, directed=False,
                          num_tail_nodes=None, num_head_nodes=None,
                          chunk_size=DEFAULT_CHUNK_SIZE):
    """Read an ET written by :func:`write_edge_table_jsonl`."""
    path = Path(path)
    tails, heads = [], []
    row = 0
    for records in _iter_record_chunks(path, chunk_size):
        for record in records:
            if record.get("id") != row:
                raise ValueError(
                    f"{path}: non-dense edge ids (expected {row}, "
                    f"got {record.get('id')})"
                )
            tails.append(record["tail"])
            heads.append(record["head"])
            row += 1
    return EdgeTable(
        name or table_stem(path),
        np.array(tails, dtype=np.int64),
        np.array(heads, dtype=np.int64),
        num_tail_nodes=num_tail_nodes,
        num_head_nodes=num_head_nodes,
        directed=directed,
    )
