"""JSON-lines export: one record per node/edge instance.

The record-oriented view (ids joined with all their properties) that
document stores and streaming loaders expect.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

__all__ = ["write_nodes_jsonl", "write_edges_jsonl", "export_graph_jsonl"]


def _jsonable(value):
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


def write_nodes_jsonl(graph, type_name, path):
    """Write all instances of a node type as JSON lines."""
    path = Path(path)
    with path.open("w") as handle:
        for record in graph.node_records(type_name):
            handle.write(
                json.dumps({k: _jsonable(v) for k, v in record.items()})
            )
            handle.write("\n")
    return path


def write_edges_jsonl(graph, edge_name, path):
    """Write all instances of an edge type as JSON lines."""
    path = Path(path)
    with path.open("w") as handle:
        for record in graph.edge_records(edge_name):
            handle.write(
                json.dumps({k: _jsonable(v) for k, v in record.items()})
            )
            handle.write("\n")
    return path


def export_graph_jsonl(graph, directory):
    """Export every type to ``<directory>/<TypeName>.jsonl``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for type_name in graph.schema.node_types:
        written.append(
            write_nodes_jsonl(
                graph, type_name, directory / f"{type_name}.jsonl"
            )
        )
    for edge_name in graph.schema.edge_types:
        written.append(
            write_edges_jsonl(
                graph, edge_name, directory / f"{edge_name}.jsonl"
            )
        )
    return written
