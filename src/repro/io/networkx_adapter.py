"""networkx interop: the analysis-ecosystem boundary.

All internal computation stays on numpy edge arrays; these adapters
exist so users can hand generated graphs to the networkx ecosystem (or
bring networkx graphs in as empirical structure sources).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from ..tables import EdgeTable

__all__ = ["to_networkx", "from_networkx", "property_graph_to_networkx"]


def to_networkx(table):
    """Convert an :class:`EdgeTable` to a networkx (Di)Graph."""
    graph = nx.DiGraph() if table.directed else nx.Graph()
    if table.is_bipartite:
        graph.add_nodes_from(
            (f"t{i}" for i in range(table.num_tail_nodes))
        )
        graph.add_nodes_from(
            (f"h{i}" for i in range(table.num_head_nodes))
        )
        graph.add_edges_from(
            (f"t{int(t)}", f"h{int(h)}")
            for t, h in zip(table.tails, table.heads)
        )
        return graph
    graph.add_nodes_from(range(table.num_nodes))
    graph.add_edges_from(
        (int(t), int(h)) for t, h in zip(table.tails, table.heads)
    )
    return graph


def from_networkx(graph, name="imported"):
    """Convert a networkx graph to an :class:`EdgeTable`.

    Node labels are relabelled to dense ints in sorted order.
    """
    nodes = sorted(graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    tails = np.fromiter(
        (index[u] for u, _v in graph.edges()),
        dtype=np.int64,
        count=graph.number_of_edges(),
    )
    heads = np.fromiter(
        (index[v] for _u, v in graph.edges()),
        dtype=np.int64,
        count=graph.number_of_edges(),
    )
    return EdgeTable(
        name,
        tails,
        heads,
        num_tail_nodes=len(nodes),
        num_head_nodes=len(nodes),
        directed=graph.is_directed(),
    )


def property_graph_to_networkx(result, edge_name):
    """Convert one edge type of a generated graph, attaching node and
    edge properties as networkx attributes."""
    edge = result.schema.edge_type(edge_name)
    table = result.edges(edge_name)
    graph = to_networkx(table)
    if not table.is_bipartite:
        for prop in result.schema.node_type(edge.tail_type).properties:
            values = result.node_property(edge.tail_type, prop.name).values
            for node in graph.nodes():
                if node < len(values):
                    graph.nodes[node][prop.name] = values[node]
    for prop in edge.properties:
        values = result.edge_property(edge_name, prop.name).values
        for edge_id, (t, h) in enumerate(
            zip(table.tails, table.heads)
        ):
            u = f"t{int(t)}" if table.is_bipartite else int(t)
            v = f"h{int(h)}" if table.is_bipartite else int(h)
            if graph.has_edge(u, v):
                graph.edges[u, v][prop.name] = values[edge_id]
    return graph
