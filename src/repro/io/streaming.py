"""Streaming GraphSink/GraphSource layer: chunked, memory-bounded IO.

A :class:`GraphSink` turns a :class:`~repro.core.result.PropertyGraph`
into files of one format, consuming every table in fixed-size id-range
chunks (``chunk_size`` rows) so the export path never materialises a
whole table as Python rows or a whole file as one string.  A
:class:`GraphSource` reads the directory back.  Both speak a
``manifest.json`` sidecar recording the exact dtype and shape of every
table, which is what makes round trips lossless for bool, unicode,
datetime and empty tables — information the bare text formats drop.

Sinks also implement the *streaming protocol* the engines drive
(:meth:`GraphSink.begin` / :meth:`GraphSink.on_table` /
:meth:`GraphSink.finish`): the serial engine and the shard-parallel
executor announce each completed task in serial plan order, and the
sink writes the corresponding file as soon as its inputs are complete
— export overlaps generation instead of waiting for the whole graph.
Output bytes are identical to calling :func:`export_graph` on the
finished graph, and to the pre-streaming per-row exporters (the
bit-identity contract of DESIGN.md, extended to IO; see
``tests/golden/`` and ``tests/test_streaming_io.py``).

Compression (``compress=True``) gzips every data file with
deterministic headers, so the byte-identity guarantee covers ``.gz``
output too.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..tables import EdgeTable
from .chunks import DEFAULT_CHUNK_SIZE

__all__ = [
    "GraphSink",
    "CsvSink",
    "JsonlSink",
    "EdgelistSink",
    "GraphmlSink",
    "GraphSource",
    "CsvSource",
    "JsonlSource",
    "EdgelistSource",
    "export_graph",
    "make_sink",
    "make_source",
    "merge_shard_manifests",
    "SINK_FORMATS",
    "MANIFEST_NAME",
]

MANIFEST_NAME = "manifest.json"


def _dtype_token(values):
    """JSON-safe dtype spelling (``"object"`` for O columns)."""
    return "object" if values.dtype.kind == "O" else values.dtype.str


def _token_dtype(token):
    return object if token == "object" else np.dtype(token)


# -- sinks --------------------------------------------------------------------


class GraphSink:
    """Base class: a chunked, format-specific graph writer.

    Parameters
    ----------
    directory:
        output directory (created on first write).
    chunk_size:
        rows per formatted chunk — the memory bound of the export path.
    compress:
        gzip every data file (deterministic headers; adds ``.gz``).

    Subclasses implement :meth:`write_property_table` /
    :meth:`write_edge_table` (table-oriented formats) or override
    :meth:`on_table` / :meth:`finish` (record-oriented formats that
    must join several tables per file).

    The engine-facing streaming protocol is ``begin(graph)`` once,
    ``on_table(kind, key)`` per completed task *in serial plan order*,
    ``finish()`` once; ``written`` accumulates the produced paths.
    """

    format_name = None
    suffix = None

    def __init__(self, directory, chunk_size=DEFAULT_CHUNK_SIZE,
                 compress=False):
        self.directory = Path(directory)
        self.chunk_size = int(chunk_size)
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.compress = bool(compress)
        self.written = []
        self.graph = None
        self._tables = {}
        #: Optional ordered parallel map (``pmap(fn, jobs)`` yielding
        #: results in submission order).  The sharded executor's
        #: process backend attaches its worker pool here so per-chunk
        #: text formatting — the dominant export cost — runs in the
        #: workers while the sink appends results in plan order.
        self.pmap = None

    # -- plumbing ---------------------------------------------------------

    def data_path(self, stem):
        """Output path for one table/type file (``.gz`` aware);
        ensures the directory exists."""
        self.directory.mkdir(parents=True, exist_ok=True)
        name = f"{stem}{self.suffix}"
        if self.compress:
            name += ".gz"
        return self.directory / name

    def _record(self, name, path, entry):
        entry["file"] = path.name
        self._tables[name] = entry
        self.written.append(path)
        return path

    # -- table-oriented writes (overridden per format) --------------------

    def write_property_table(self, table, name=None,
                             role="property"):
        raise NotImplementedError(
            f"{type(self).__name__} does not export property tables"
        )

    def write_edge_table(self, table, name=None):
        raise NotImplementedError(
            f"{type(self).__name__} does not export edge tables"
        )

    # -- streaming protocol ------------------------------------------------

    def begin(self, graph):
        """Attach the (possibly still-filling) result graph."""
        self.graph = graph

    def on_table(self, kind, key):
        """One task finished: ``kind`` in ``count`` / ``node_property``
        / ``edge_table`` / ``edge_property``; ``key`` its subject.

        Default behaviour writes each table as it lands, which is
        correct for table-oriented formats.
        """
        if kind == "node_property":
            self.write_property_table(
                self.graph.node_properties[key], name=key,
                role="node_property",
            )
        elif kind == "edge_property":
            self.write_property_table(
                self.graph.edge_properties[key], name=key,
                role="edge_property",
            )
        elif kind == "edge_table":
            self.write_edge_table(
                self.graph.edge_tables[key], name=key
            )

    def finish(self):
        """Write the manifest; returns all written paths.

        An ``extra_manifest`` attribute set on the sink (a dict) is
        merged into the manifest document — the planting stage records
        its ground-truth node maps this way, so a ``(template, world,
        ground_truth)`` triple travels in one export directory.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest = {
            "format": self.format_name,
            "version": 1,
            "compress": self.compress,
            "tables": self._tables,
        }
        extra = getattr(self, "extra_manifest", None)
        if extra:
            manifest.update(extra)
        path = self.directory / MANIFEST_NAME
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        self.written.append(path)
        return list(self.written)

    # -- manifest entries --------------------------------------------------

    def _property_entry(self, table, role):
        return {
            "kind": "property",
            "role": role,
            "rows": len(table),
            "dtype": _dtype_token(table.values),
        }

    def _edge_entry(self, table):
        return {
            "kind": "edge",
            "rows": len(table),
            "num_tail_nodes": table.num_tail_nodes,
            "num_head_nodes": table.num_head_nodes,
            "directed": table.directed,
        }


class CsvSink(GraphSink):
    """One ``id,value`` / ``id,tailId,headId`` CSV per table."""

    format_name = "csv"
    suffix = ".csv"

    def write_property_table(self, table, name=None,
                             role="property"):
        from .csv_io import write_property_table

        name = name or table.name
        path = self.data_path(name)
        write_property_table(
            table, path, chunk_size=self.chunk_size,
            compress=self.compress, pmap=self.pmap,
        )
        return self._record(
            name, path, self._property_entry(table, role)
        )

    def write_edge_table(self, table, name=None):
        from .csv_io import write_edge_table

        name = name or table.name
        path = self.data_path(name)
        write_edge_table(
            table, path, chunk_size=self.chunk_size,
            compress=self.compress, pmap=self.pmap,
        )
        return self._record(name, path, self._edge_entry(table))


class EdgelistSink(GraphSink):
    """One ``tail head`` file per edge table (structure only)."""

    format_name = "edgelist"
    suffix = ".edges"

    def write_edge_table(self, table, name=None):
        from .edgelist import write_edgelist

        name = name or table.name
        path = self.data_path(name)
        write_edgelist(
            table, path, chunk_size=self.chunk_size,
            compress=self.compress, pmap=self.pmap,
        )
        return self._record(name, path, self._edge_entry(table))

    def on_table(self, kind, key):
        if kind == "edge_table":
            self.write_edge_table(
                self.graph.edge_tables[key], name=key
            )


class JsonlSink(GraphSink):
    """One record-oriented ``.jsonl`` per node/edge type.

    Record files join a type's id column with all its property columns,
    so a type can only be written once every contributing table exists.
    Under the streaming protocol the sink tracks, per type, which
    tables are still outstanding and flushes each type the moment its
    last table lands — the earliest plan-order point at which the file
    is writable at all.
    """

    format_name = "jsonl"
    suffix = ".jsonl"

    def __init__(self, directory, chunk_size=DEFAULT_CHUNK_SIZE,
                 compress=False):
        super().__init__(directory, chunk_size, compress)
        self._node_pending = None
        self._edge_pending = None

    # Table-oriented writes use the null-preserving table layout.
    def write_property_table(self, table, name=None,
                             role="property"):
        from .jsonl import write_property_table_jsonl

        name = name or table.name
        path = self.data_path(name)
        write_property_table_jsonl(
            table, path, chunk_size=self.chunk_size,
            compress=self.compress, pmap=self.pmap,
        )
        return self._record(
            name, path, self._property_entry(table, role)
        )

    def write_edge_table(self, table, name=None):
        from .jsonl import write_edge_table_jsonl

        name = name or table.name
        path = self.data_path(name)
        write_edge_table_jsonl(
            table, path, chunk_size=self.chunk_size,
            compress=self.compress, pmap=self.pmap,
        )
        return self._record(name, path, self._edge_entry(table))

    # -- record-oriented streaming ----------------------------------------

    def begin(self, graph):
        super().begin(graph)
        schema = graph.schema
        self._node_pending = {
            name: {f"{name}.{p.name}" for p in node_type.properties}
            for name, node_type in schema.node_types.items()
        }
        self._edge_pending = {
            name: {name}
            | {f"{name}.{p.name}" for p in edge_type.properties}
            for name, edge_type in schema.edge_types.items()
        }

    def _flush_node_type(self, type_name):
        from .jsonl import write_nodes_jsonl

        path = self.data_path(type_name)
        write_nodes_jsonl(
            self.graph, type_name, path,
            chunk_size=self.chunk_size, compress=self.compress,
            pmap=self.pmap,
        )
        properties = [
            p.name
            for p in self.graph.schema.node_type(type_name).properties
        ]
        return self._record(type_name, path, {
            "kind": "node_records",
            "rows": self.graph.num_nodes(type_name),
            "properties": properties,
        })

    def _flush_edge_type(self, edge_name):
        from .jsonl import write_edges_jsonl

        path = self.data_path(edge_name)
        write_edges_jsonl(
            self.graph, edge_name, path,
            chunk_size=self.chunk_size, compress=self.compress,
            pmap=self.pmap,
        )
        properties = [
            p.name
            for p in self.graph.schema.edge_type(edge_name).properties
        ]
        return self._record(edge_name, path, {
            "kind": "edge_records",
            "rows": self.graph.num_edges(edge_name),
            "properties": properties,
        })

    def on_table(self, kind, key):
        if kind == "count":
            if key in self._node_pending and \
                    not self._node_pending[key]:
                del self._node_pending[key]
                self._flush_node_type(key)
            return
        if kind == "node_property":
            type_name = key.split(".", 1)[0]
            pending = self._node_pending.get(type_name)
            if pending is None:
                return
            pending.discard(key)
            if not pending and type_name in self.graph.node_counts:
                del self._node_pending[type_name]
                self._flush_node_type(type_name)
            return
        if kind in ("edge_table", "edge_property"):
            edge_name = key.split(".", 1)[0]
            pending = self._edge_pending.get(edge_name)
            if pending is None:
                return
            pending.discard(key)
            if not pending:
                del self._edge_pending[edge_name]
                self._flush_edge_type(edge_name)

    def finish(self):
        # Flush anything not announced through the protocol; a type is
        # only writable when its count/edge table AND every property
        # table actually exist, so partial graphs skip incomplete
        # types instead of crashing.
        if self._node_pending is not None:
            for type_name in list(self._node_pending):
                if type_name in self.graph.node_counts and all(
                    key in self.graph.node_properties
                    for key in self._node_pending[type_name]
                ):
                    del self._node_pending[type_name]
                    self._flush_node_type(type_name)
            for edge_name in list(self._edge_pending):
                pending = self._edge_pending[edge_name]
                if edge_name in self.graph.edge_tables and all(
                    key in self.graph.edge_properties
                    for key in pending if key != edge_name
                ):
                    del self._edge_pending[edge_name]
                    self._flush_edge_type(edge_name)
        return super().finish()


class GraphmlSink(GraphSink):
    """One ``.graphml`` document per monopartite edge type.

    GraphML interleaves nodes and edges in one document, so files are
    written at :meth:`finish` when all contributing tables exist.
    """

    format_name = "graphml"
    suffix = ".graphml"

    def on_table(self, kind, key):
        pass

    def finish(self):
        from .graphml import write_graphml

        if self.graph is None:
            return super().finish()
        schema = self.graph.schema
        for name, edge in schema.edge_types.items():
            if edge.tail_type != edge.head_type:
                continue
            if name not in self.graph.edge_tables:
                continue
            path = self.data_path(name)
            write_graphml(
                self.graph, name, path,
                chunk_size=self.chunk_size, compress=self.compress,
            )
            self._record(name, path, {
                "kind": "graphml",
                "rows": self.graph.num_edges(name),
            })
        return super().finish()


# -- sources ------------------------------------------------------------------


class GraphSource:
    """Base class: reads a sink directory back into tables.

    The manifest (when present) supplies the dtype and shape of every
    table, making reads lossless; without it, readers fall back to the
    per-format inference heuristics.
    """

    format_name = None

    def __init__(self, directory, chunk_size=DEFAULT_CHUNK_SIZE):
        self.directory = Path(directory)
        self.chunk_size = int(chunk_size)
        manifest_path = self.directory / MANIFEST_NAME
        self.manifest = None
        if manifest_path.exists():
            with open(manifest_path, encoding="utf-8") as handle:
                self.manifest = json.load(handle)

    def _entries(self, kind):
        if self.manifest is None:
            return {}
        return {
            name: entry
            for name, entry in self.manifest["tables"].items()
            if entry["kind"] == kind
        }

    def _entry(self, name):
        if self.manifest is None:
            return None
        return self.manifest["tables"].get(name)

    def _data_path(self, name, suffix):
        entry = self._entry(name)
        if entry is not None:
            return self.directory / entry["file"]
        for candidate in (f"{name}{suffix}", f"{name}{suffix}.gz"):
            path = self.directory / candidate
            if path.exists():
                return path
        raise FileNotFoundError(
            f"{self.directory}: no {suffix} file for table {name!r}"
        )

    # -- common reconstruction helpers ------------------------------------

    def _property_dtype(self, name, dtype):
        if dtype is not None:
            return dtype
        entry = self._entry(name)
        if entry is not None and entry["kind"] == "property":
            return _token_dtype(entry["dtype"])
        return None

    def _edge_kwargs(self, name):
        entry = self._entry(name)
        if entry is None or entry["kind"] != "edge":
            return {}
        return {
            "num_tail_nodes": entry["num_tail_nodes"],
            "num_head_nodes": entry["num_head_nodes"],
            "directed": entry["directed"],
        }

    def property_table_names(self):
        return list(self._entries("property"))

    def edge_table_names(self):
        return list(self._entries("edge"))

    def read_property_table(self, name, dtype=None):
        raise NotImplementedError

    def read_edge_table(self, name):
        raise NotImplementedError

    def property_tables(self):
        """All property tables recorded in the manifest, by name."""
        return {
            name: self.read_property_table(name)
            for name in self.property_table_names()
        }

    def edge_tables(self):
        """All edge tables recorded in the manifest, by name."""
        return {
            name: self.read_edge_table(name)
            for name in self.edge_table_names()
        }


class CsvSource(GraphSource):
    format_name = "csv"

    def read_property_table(self, name, dtype=None):
        from .csv_io import read_property_table

        return read_property_table(
            self._data_path(name, ".csv"),
            name=name,
            dtype=self._property_dtype(name, dtype),
            chunk_size=self.chunk_size,
        )

    def read_edge_table(self, name):
        from .csv_io import read_edge_table

        return read_edge_table(
            self._data_path(name, ".csv"),
            name=name,
            chunk_size=self.chunk_size,
            **self._edge_kwargs(name),
        )


class JsonlSource(GraphSource):
    format_name = "jsonl"

    def read_property_table(self, name, dtype=None):
        from .jsonl import read_property_table_jsonl

        return read_property_table_jsonl(
            self._data_path(name, ".jsonl"),
            name=name,
            dtype=self._property_dtype(name, dtype),
            chunk_size=self.chunk_size,
        )

    def read_edge_table(self, name):
        from .jsonl import read_edge_table_jsonl

        return read_edge_table_jsonl(
            self._data_path(name, ".jsonl"),
            name=name,
            chunk_size=self.chunk_size,
            **self._edge_kwargs(name),
        )


class EdgelistSource(GraphSource):
    format_name = "edgelist"

    def read_edge_table(self, name):
        from .edgelist import read_edgelist

        kwargs = self._edge_kwargs(name)
        table = read_edgelist(
            self._data_path(name, ".edges"),
            name=name,
            directed=kwargs.get("directed", False),
            chunk_size=self.chunk_size,
        )
        if not kwargs:
            return table
        return EdgeTable(
            name,
            table.tails,
            table.heads,
            num_tail_nodes=kwargs["num_tail_nodes"],
            num_head_nodes=kwargs["num_head_nodes"],
            directed=kwargs["directed"],
        )


# -- shard-manifest merge ------------------------------------------------------


def merge_shard_manifests(manifests):
    """Merge per-shard spool manifests into one whole-graph manifest.

    The sharded executor records every table shard-by-shard; each shard
    directory carries a ``manifest.json`` with that shard's row counts.
    This merge reconciles them into the global view:

    * shard indices must be unique and contiguous from 0 (a gap means a
      shard went missing);
    * per table, ``rows`` is the sum over shards and the per-shard rows
      must be id-contiguous (every shard present in at least one
      manifest entry or absent everywhere after its last row);
    * property dtypes of *non-empty* shards must agree; when every
      shard of a table is empty the first shard's recorded dtype wins —
      the generator-dtype contract of the empty-shard path;
    * edge metadata (``num_tail_nodes`` / ``num_head_nodes`` /
      ``directed``) describes the whole table and must be identical in
      every shard.

    Returns the merged manifest dict; raises ``ValueError`` on any
    reconciliation failure.
    """
    manifests = list(manifests)
    if not manifests:
        raise ValueError("no shard manifests to merge")
    ordered = sorted(manifests, key=lambda m: m.get("shard", 0))
    indices = [m.get("shard", 0) for m in ordered]
    if indices != list(range(len(ordered))):
        raise ValueError(
            f"shard manifests are not contiguous from 0: {indices}"
        )
    tables = {}
    for manifest in ordered:
        shard = manifest.get("shard", 0)
        for key, entry in manifest.get("tables", {}).items():
            merged = tables.get(key)
            if merged is None:
                merged = {
                    "kind": entry["kind"],
                    "rows": 0,
                    "_last_shard": shard - 1,
                }
                if entry["kind"] == "property":
                    merged["role"] = entry.get("role", "property")
                    merged["_dtype_nonempty"] = None
                    merged["_dtype_first"] = entry["dtype"]
                else:
                    for field in (
                        "num_tail_nodes", "num_head_nodes", "directed"
                    ):
                        merged[field] = entry[field]
                tables[key] = merged
            if entry["kind"] != merged["kind"]:
                raise ValueError(
                    f"table {key!r}: kind changes across shards "
                    f"({merged['kind']!r} vs {entry['kind']!r})"
                )
            if merged["rows"] and shard != merged["_last_shard"] + 1:
                raise ValueError(
                    f"table {key!r}: shard {shard} is not contiguous "
                    f"with shard {merged['_last_shard']}"
                )
            merged["_last_shard"] = shard
            rows = int(entry["rows"])
            merged["rows"] += rows
            if entry["kind"] == "property":
                dtype = entry["dtype"]
                if rows:
                    if merged["_dtype_nonempty"] is None:
                        merged["_dtype_nonempty"] = dtype
                    elif merged["_dtype_nonempty"] != dtype:
                        raise ValueError(
                            f"table {key!r}: dtype mismatch across "
                            "non-empty shards "
                            f"({merged['_dtype_nonempty']!r} vs {dtype!r})"
                        )
            else:
                for field in (
                    "num_tail_nodes", "num_head_nodes", "directed"
                ):
                    if entry[field] != merged[field]:
                        raise ValueError(
                            f"table {key!r}: {field} differs across "
                            f"shards ({merged[field]!r} vs "
                            f"{entry[field]!r})"
                        )
    for merged in tables.values():
        del merged["_last_shard"]
        if merged["kind"] == "property":
            # Non-empty shards decide the dtype; an all-empty table
            # falls back to the first shard's recorded generator dtype.
            merged["dtype"] = (
                merged.pop("_dtype_nonempty")
                or merged.pop("_dtype_first")
            )
            merged.pop("_dtype_first", None)
    return {
        "version": 1,
        "shards": len(ordered),
        "tables": tables,
    }


# -- whole-graph export and factories -----------------------------------------


def export_graph(graph, sink):
    """Drive a sink over a finished graph (plan-equivalent order).

    Emits the same ``on_table`` event sequence the engines produce —
    counts, then each table in its dict (= serial plan) order — so the
    output is byte-identical to engine-streamed export.  Returns the
    written paths.
    """
    sink.begin(graph)
    for type_name in graph.node_counts:
        sink.on_table("count", type_name)
    for key in graph.node_properties:
        sink.on_table("node_property", key)
    for name in graph.edge_tables:
        sink.on_table("edge_table", name)
    for key in graph.edge_properties:
        sink.on_table("edge_property", key)
    return sink.finish()


SINK_FORMATS = {
    "csv": (CsvSink, CsvSource),
    "jsonl": (JsonlSink, JsonlSource),
    "edgelist": (EdgelistSink, EdgelistSource),
    "graphml": (GraphmlSink, None),
}


def make_sink(format_name, directory, chunk_size=DEFAULT_CHUNK_SIZE,
              compress=False):
    """Sink factory keyed by format name (the CLI entry point)."""
    if format_name not in SINK_FORMATS:
        raise ValueError(
            f"unknown sink format {format_name!r}; "
            f"expected one of {sorted(SINK_FORMATS)}"
        )
    sink_cls, _ = SINK_FORMATS[format_name]
    return sink_cls(directory, chunk_size=chunk_size, compress=compress)


def make_source(format_name, directory, chunk_size=DEFAULT_CHUNK_SIZE):
    """Source factory keyed by format name."""
    if format_name not in SINK_FORMATS:
        raise ValueError(
            f"unknown source format {format_name!r}; "
            f"expected one of {sorted(SINK_FORMATS)}"
        )
    _, source_cls = SINK_FORMATS[format_name]
    if source_cls is None:
        raise ValueError(f"format {format_name!r} has no source")
    return source_cls(directory, chunk_size=chunk_size)
