"""Multi-valued properties (paper §5: "performing experiments for
multi-valued properties would also be interesting").

A multi-valued property holds a *set* of values per instance — e.g. a
Person's interests.  :class:`MultiValueGenerator` draws a per-instance
set size from a distribution and fills the set with weighted draws
without replacement, all under the in-place contract (the whole set is
a pure function of the instance id).

Weighted sampling *without replacement* is the hard case for
batching: every pick zeroes a weight that the next pick's cdf reads,
so draws chain within an instance.  Two vectorised strategies are
provided:

* ``method="exact"`` (default) replays the legacy sequential
  inverse-transform draws — pick ``d`` of instance ``i`` consumes
  ``uniform(seed_i, d)`` against ``cumsum(remaining)/sum(remaining)``
  — but processes *all instances per round* instead of all rounds per
  instance: round ``d`` is one ``(rows, k)`` cumsum/compare pass over
  a chunked scratch matrix (or one compiled C loop via
  :mod:`repro.properties._ckernel`).  Values are bit-identical to the
  frozen legacy generator; ``tests/golden/properties/`` pins this.
* ``method="es"`` draws Efraimidis–Spirakis keys —
  ``u_j ** (1 / w_j)`` per (instance, value), one flat ragged pass —
  and takes the top ``size_i`` per instance.  Identical *distribution*
  (Efraimidis & Spirakis 2006), one vectorised pass regardless of set
  size, but a different draw-consumption pattern, so outputs are not
  value-compatible with ``"exact"``; use it for fresh datasets where
  replaying existing seeds does not matter and ``k`` is small enough
  that ``n * k`` draws beat ``n * size`` rounds.

The companion analysis function
:func:`repro.stats.multivalue.empirical_multivalue_joint` measures the
value-pair joint over edges for multi-valued labels, extending the
Figure-3 protocol's measurement step to sets.
"""

from __future__ import annotations

import numpy as np

from ..prng.splitmix import GOLDEN_GAMMA, mix64
from .base import PropertyGenerator

__all__ = ["MultiValueGenerator"]

_DOUBLE_NORM = 1.0 / (1 << 53)

#: Scratch budget for the exact numpy path: rows are chunked so the
#: per-round (rows, k) float64 matrices stay ~8 MB each.
_SCRATCH_FLOATS = 1 << 20


def _exact_picks_numpy(seeds, sizes, weights):
    """Replay the legacy sequential weighted picks, batched by round.

    Returns ``(codes, offsets)``: instance ``i``'s picks (in draw
    order) at ``codes[offsets[i]:offsets[i + 1]]``.  Round ``d``
    computes, for every instance still drawing, the exact float64
    sequence of the legacy ``RandomStream.choice`` call — pairwise
    ``sum`` for the total, sequential ``cumsum``, elementwise divide,
    ``searchsorted(side="right")`` — as matrix rows.
    """
    n = seeds.size
    k = weights.size
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    codes = np.empty(int(offsets[-1]), dtype=np.int64)
    if n == 0 or codes.size == 0:
        return codes, offsets
    chunk = max(1, _SCRATCH_FLOATS // max(k, 1))
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        seeds_l = seeds[lo:hi]
        sizes_l = sizes[lo:hi]
        starts_l = offsets[lo:hi]
        remaining = np.broadcast_to(
            weights, (hi - lo, k)
        ).copy()
        scratch = np.empty((hi - lo, k), dtype=np.float64)
        for d in range(int(sizes_l.max())):
            # Compact to the rows still drawing, so finished rows do
            # not keep paying the per-round matrix work (their picks
            # are already written; dropping them cannot change any
            # remaining row's draws).
            keep = sizes_l > d
            if not keep.all():
                seeds_l = seeds_l[keep]
                sizes_l = sizes_l[keep]
                starts_l = starts_l[keep]
                remaining = remaining[keep]
            rows = seeds_l.size
            if rows == 0:
                break
            cdf = scratch[:rows]
            with np.errstate(over="ignore"):
                bits = mix64(
                    seeds_l + np.uint64(d + 1) * GOLDEN_GAMMA
                )
            u = (bits >> np.uint64(11)).astype(np.float64)
            u *= _DOUBLE_NORM
            # total via sum(), not cumsum[-1]: numpy's pairwise sum is
            # what the legacy choice() normalised by, and the two can
            # differ in the last ulp.
            totals = remaining.sum(axis=1)
            np.cumsum(remaining, axis=1, out=cdf)
            cdf /= totals[:, None]
            picked = (cdf <= u[:, None]).sum(axis=1)
            np.minimum(picked, k - 1, out=picked)
            codes[starts_l + d] = picked
            remaining[np.arange(rows), picked] = 0.0
    return codes, offsets


def _es_picks(seeds, sizes, weights):
    """Efraimidis–Spirakis keys: one flat pass, top-``size`` per row.

    Instance ``i`` draws ``k`` uniforms (``uniform(seed_i, j)`` for
    value ``j``) and keeps the ``size_i`` values with the largest
    ``u ** (1 / w)`` keys — weighted sampling without replacement in a
    single vectorised pass.
    """
    n = seeds.size
    k = weights.size
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    codes = np.empty(int(offsets[-1]), dtype=np.int64)
    if n == 0 or codes.size == 0:
        return codes, offsets
    position = np.arange(k, dtype=np.uint64)
    inv_w = 1.0 / weights
    chunk = max(1, _SCRATCH_FLOATS // max(k, 1))
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        seeds_c = seeds[lo:hi, None]
        with np.errstate(over="ignore"):
            bits = mix64(
                seeds_c + (position[None, :] + np.uint64(1)) * GOLDEN_GAMMA
            )
        u = (bits >> np.uint64(11)).astype(np.float64)
        u *= _DOUBLE_NORM
        keys = u ** inv_w[None, :]
        # Top-size_i per row: argpartition narrows to the chunk-wide
        # top-smax candidates (its prefix is NOT ordered), then a
        # small argsort over just those columns ranks them so a row's
        # first size_i entries are exactly its size_i largest keys.
        smax = int(np.max(sizes[lo:hi]))
        candidates = np.argpartition(-keys, smax - 1, axis=1)[:, :smax]
        ranked = np.argsort(
            -np.take_along_axis(keys, candidates, axis=1), axis=1
        )
        top = np.take_along_axis(candidates, ranked, axis=1)
        for row in range(hi - lo):
            size = int(sizes[lo + row])
            start = int(offsets[lo + row])
            codes[start:start + size] = top[row, :size]
    return codes, offsets


class MultiValueGenerator(PropertyGenerator):
    """Generate a tuple of distinct values per instance.

    Parameters (via ``initialize``)
    -------------------------------
    values:
        the value universe, ordered by decreasing popularity.
    min_size, max_size:
        set size bounds (uniform between them; default 1..3).
    exponent:
        Zipf popularity exponent over ``values`` (default 1.0).
    method:
        ``"exact"`` (default) replays the legacy sequential draws
        bit-for-bit; ``"es"`` uses Efraimidis–Spirakis keys — same
        distribution, different draw consumption (see module docs).

    Values within one instance are distinct; the output dtype is
    object (each cell a tuple, sorted by universe rank for
    determinism-friendly comparison).
    """

    name = "multi_value"
    supports_out = True
    access = "random"

    def parameter_names(self):
        return {"values", "min_size", "max_size", "exponent", "method"}

    def _validate_params(self):
        values = self._params.get("values")
        if values is not None and len(values) == 0:
            raise ValueError("values must be non-empty")
        lo = self._params.get("min_size", 1)
        hi = self._params.get("max_size", 3)
        if lo < 1 or hi < lo:
            raise ValueError("need 1 <= min_size <= max_size")
        if values is not None and hi > len(values):
            raise ValueError("max_size exceeds the value universe")
        exponent = self._params.get("exponent", 1.0)
        if exponent < 0:
            raise ValueError("exponent must be nonnegative")
        method = self._params.get("method", "exact")
        if method not in ("exact", "es"):
            raise ValueError("method must be 'exact' or 'es'")

    def _weights(self):
        values = self._params["values"]
        exponent = float(self._params.get("exponent", 1.0))
        universe = len(values)
        ranks = np.arange(1, universe + 1, dtype=np.float64)
        return ranks ** (-exponent) if exponent > 0 \
            else np.ones(universe)

    def run_many(self, ids, stream, *dependency_arrays, out=None):
        values = self._params.get("values")
        if values is None:
            raise ValueError("MultiValueGenerator needs 'values'")
        lo = int(self._params.get("min_size", 1))
        hi = int(self._params.get("max_size", 3))
        weights = self._weights()

        ids = np.asarray(ids, dtype=np.int64)
        sizes = stream.substream("size").randint(ids, lo, hi + 1)
        pick_stream = stream.substream("picks")
        out = self._out_buffer(ids.size, out)
        if ids.size == 0:
            return out
        seeds = pick_stream.indexed_substream_seeds(ids)
        if self._params.get("method", "exact") == "es":
            codes, offsets = _es_picks(seeds, sizes, weights)
        else:
            from ._ckernel import load_property_ckernel

            kernel = load_property_ckernel()
            if kernel is not None:
                codes, offsets = kernel.multivalue_picks(
                    seeds, sizes, weights
                )
            else:
                codes, offsets = _exact_picks_numpy(
                    seeds, sizes, weights
                )
        values = list(values)
        flat = codes.tolist()
        bounds = offsets.tolist()
        out[:] = [
            tuple(values[c] for c in sorted(flat[a:b]))
            for a, b in zip(bounds, bounds[1:])
        ]
        return out
