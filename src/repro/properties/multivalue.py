"""Multi-valued properties (paper §5: "performing experiments for
multi-valued properties would also be interesting").

A multi-valued property holds a *set* of values per instance — e.g. a
Person's interests.  :class:`MultiValueGenerator` draws a per-instance
set size from a distribution and fills the set with weighted draws
without replacement, all under the in-place contract (the whole set is
a pure function of the instance id).

The companion analysis function
:func:`repro.stats.multivalue.empirical_multivalue_joint` measures the
value-pair joint over edges for multi-valued labels, extending the
Figure-3 protocol's measurement step to sets.
"""

from __future__ import annotations

import numpy as np

from .base import PropertyGenerator

__all__ = ["MultiValueGenerator"]


class MultiValueGenerator(PropertyGenerator):
    """Generate a tuple of distinct values per instance.

    Parameters (via ``initialize``)
    -------------------------------
    values:
        the value universe, ordered by decreasing popularity.
    min_size, max_size:
        set size bounds (uniform between them; default 1..3).
    exponent:
        Zipf popularity exponent over ``values`` (default 1.0).

    Values within one instance are distinct; the output dtype is
    object (each cell a tuple, sorted by universe rank for
    determinism-friendly comparison).
    """

    name = "multi_value"

    def parameter_names(self):
        return {"values", "min_size", "max_size", "exponent"}

    def _validate_params(self):
        values = self._params.get("values")
        if values is not None and len(values) == 0:
            raise ValueError("values must be non-empty")
        lo = self._params.get("min_size", 1)
        hi = self._params.get("max_size", 3)
        if lo < 1 or hi < lo:
            raise ValueError("need 1 <= min_size <= max_size")
        if values is not None and hi > len(values):
            raise ValueError("max_size exceeds the value universe")
        exponent = self._params.get("exponent", 1.0)
        if exponent < 0:
            raise ValueError("exponent must be nonnegative")

    def run_many(self, ids, stream, *dependency_arrays):
        values = self._params.get("values")
        if values is None:
            raise ValueError("MultiValueGenerator needs 'values'")
        lo = int(self._params.get("min_size", 1))
        hi = int(self._params.get("max_size", 3))
        exponent = float(self._params.get("exponent", 1.0))
        universe = len(values)
        ranks = np.arange(1, universe + 1, dtype=np.float64)
        weights = ranks ** (-exponent) if exponent > 0 \
            else np.ones(universe)

        ids = np.asarray(ids, dtype=np.int64)
        sizes = stream.substream("size").randint(ids, lo, hi + 1)
        pick_stream = stream.substream("picks")
        out = np.empty(ids.size, dtype=object)
        for i, instance in enumerate(ids):
            per_instance = pick_stream.indexed_substream(int(instance))
            chosen = []
            remaining = weights.copy()
            for draw in range(int(sizes[i])):
                code = int(
                    per_instance.choice(np.int64(draw), remaining)
                )
                chosen.append(code)
                remaining[code] = 0.0
            chosen.sort()
            out[i] = tuple(values[c] for c in chosen)
        return out
