"""Property Generators (the PG plug-in family of Section 4.1)."""

from .base import BoundGenerator, PropertyGenerator
from .categorical import (
    CategoricalGenerator,
    ConditionalGenerator,
    WeightedDictGenerator,
)
from .datetime_gen import AfterDependencyGenerator, DateRangeGenerator
from .derived import FormulaGenerator, LookupGenerator
from .identifier import CompositeKeyGenerator, UuidGenerator
from .legacy import LEGACY_GENERATORS, create_legacy_generator
from .multivalue import MultiValueGenerator
from .numeric import (
    NormalGenerator,
    SequenceGenerator,
    UniformFloatGenerator,
    UniformIntGenerator,
    ZipfIntGenerator,
)
from .registry import (
    available_property_generators,
    create_property_generator,
    register_property_generator,
)
from .text import TemplateGenerator, TextGenerator

__all__ = [
    "AfterDependencyGenerator",
    "BoundGenerator",
    "CategoricalGenerator",
    "CompositeKeyGenerator",
    "ConditionalGenerator",
    "DateRangeGenerator",
    "FormulaGenerator",
    "LEGACY_GENERATORS",
    "LookupGenerator",
    "MultiValueGenerator",
    "NormalGenerator",
    "PropertyGenerator",
    "SequenceGenerator",
    "TemplateGenerator",
    "TextGenerator",
    "UniformFloatGenerator",
    "UniformIntGenerator",
    "UuidGenerator",
    "WeightedDictGenerator",
    "ZipfIntGenerator",
    "available_property_generators",
    "create_legacy_generator",
    "create_property_generator",
    "register_property_generator",
]
