"""Text synthesis generators (message bodies, labels).

:class:`TextGenerator` is the heaviest builtin PG — a sentence per
instance means a *ragged* number of draws per id.  The legacy
implementation (frozen in :mod:`repro.properties.legacy`) built one
``indexed_substream`` object and ran one ``searchsorted`` per
instance; the batched pipeline here computes every substream seed,
every word draw and every vocabulary code in a handful of vectorised
passes (:meth:`~repro.prng.RandomStream.uniform_ragged`), then
assembles sentences with one flat codes→words fancy-index and C-level
``join`` over list slices — the same map/join strategy
:mod:`repro.io.chunks` measured fastest for string assembly.  With a
system C compiler the draw+search inner loop additionally runs
compiled (:mod:`repro.properties._ckernel`), falling back to numpy
silently.
"""

from __future__ import annotations

import numpy as np

from .base import PropertyGenerator

__all__ = ["TextGenerator", "TemplateGenerator"]


class TextGenerator(PropertyGenerator):
    """Random word sequences from a vocabulary.

    Parameters (via ``initialize``)
    -------------------------------
    vocabulary:
        list of words.
    min_words, max_words:
        sentence length bounds (defaults 3 and 12).
    zipf_exponent:
        word popularity skew (default 1.0; 0 disables skew).
    """

    name = "text"
    supports_out = True
    access = "random"

    def parameter_names(self):
        return {"vocabulary", "min_words", "max_words", "zipf_exponent"}

    def _validate_params(self):
        vocab = self._params.get("vocabulary")
        if vocab is not None and len(vocab) == 0:
            raise ValueError("vocabulary must be non-empty")
        lo = self._params.get("min_words", 3)
        hi = self._params.get("max_words", 12)
        if lo < 1 or hi < lo:
            raise ValueError("need 1 <= min_words <= max_words")
        self._cache = None

    def _tables(self):
        """Cached ``(cdf, word_array)`` for the current parameters."""
        vocab = self._params["vocabulary"]
        exponent = float(self._params.get("zipf_exponent", 1.0))
        key = (id(vocab), len(vocab), exponent)
        cache = getattr(self, "_cache", None)
        if cache is not None and cache[0] == key:
            return cache[1], cache[2]
        if exponent > 0:
            ranks = np.arange(1, len(vocab) + 1, dtype=np.float64)
            weights = ranks ** (-exponent)
            cdf = np.cumsum(weights / weights.sum())
        else:
            cdf = np.linspace(1.0 / len(vocab), 1.0, len(vocab))
        # The cumulative sum can land one ulp *below* 1.0, in which
        # case a uniform drawn in that final gap makes searchsorted
        # return len(vocab).  The legacy loop papered over it with a
        # min(code, len - 1) clamp, which silently biases the gap mass
        # onto the last (rarest) word; pinning the final step to 1.0
        # removes the gap itself, so every u in [0, 1) maps in range
        # and no clamp is needed.
        cdf[-1] = 1.0
        words = np.empty(len(vocab), dtype=object)
        words[:] = list(vocab)
        self._cache = (key, cdf, words)
        return cdf, words

    def _word_codes(self, flat_u, cdf):
        """Vocabulary codes for flat uniform draws (regression surface).

        With ``cdf[-1]`` pinned to 1.0 exactly, every ``u < 1.0`` —
        including the largest representable uniform output,
        ``(2**53 - 1) / 2**53`` — satisfies ``u < cdf[-1]``, so
        ``searchsorted(..., side="right")`` is always ``< len(vocab)``
        and the result needs no clamping.
        """
        return np.searchsorted(cdf, flat_u, side="right")

    def run_many(self, ids, stream, *dependency_arrays, out=None):
        vocab = self._params.get("vocabulary")
        if vocab is None:
            raise ValueError("TextGenerator needs 'vocabulary'")
        lo = int(self._params.get("min_words", 3))
        hi = int(self._params.get("max_words", 12))
        cdf, words = self._tables()
        ids = np.asarray(ids, dtype=np.int64)
        lengths = stream.substream("len").randint(ids, lo, hi + 1)
        word_stream = stream.substream("words")
        from ._ckernel import load_property_ckernel

        kernel = load_property_ckernel()
        if kernel is not None:
            seeds = word_stream.indexed_substream_seeds(ids)
            codes, offsets = kernel.ragged_cdf_codes(
                seeds, lengths, cdf
            )
        else:
            draws, offsets = word_stream.uniform_ragged(ids, lengths)
            codes = self._word_codes(draws, cdf)
        flat_words = words[codes].tolist()
        out = self._out_buffer(ids.size, out)
        bounds = offsets.tolist()
        join = " ".join
        out[:] = [
            join(flat_words[a:b])
            for a, b in zip(bounds, bounds[1:])
        ]
        return out


class TemplateGenerator(PropertyGenerator):
    """Fill a format template with dependency values and the id.

    Parameters (via ``initialize``)
    -------------------------------
    template:
        a ``str.format`` template; ``{id}`` and ``{0}``, ``{1}``, ...
        refer to the instance id and the dependency values.

    Example: ``template="{0} from {1} (member #{id})"`` with
    dependencies ``(name, country)``.
    """

    name = "template"
    supports_out = True
    access = "random"

    def parameter_names(self):
        return {"template"}

    def _validate_params(self):
        if "template" in self._params and not isinstance(
            self._params["template"], str
        ):
            raise ValueError("template must be a string")

    def num_dependencies(self):
        return None

    def run_many(self, ids, stream, *dependency_arrays, out=None):
        template = self._params.get("template")
        if template is None:
            raise ValueError("TemplateGenerator needs 'template'")
        ids = np.asarray(ids, dtype=np.int64)
        columns = [np.asarray(dep) for dep in dependency_arrays]
        out = self._out_buffer(ids.size, out)
        fmt = template.format
        ids_list = ids.tolist()
        # zip over the arrays (not .tolist()) keeps the numpy scalars
        # the legacy loop formatted, so float/str rendering is
        # unchanged.
        if columns:
            out[:] = [
                fmt(*args, id=i)
                for args, i in zip(zip(*columns), ids_list)
            ]
        else:
            out[:] = [fmt(id=i) for i in ids_list]
        return out
