"""Text synthesis generators (message bodies, labels)."""

from __future__ import annotations

import numpy as np

from .base import PropertyGenerator

__all__ = ["TextGenerator", "TemplateGenerator"]


class TextGenerator(PropertyGenerator):
    """Random word sequences from a vocabulary.

    Parameters (via ``initialize``)
    -------------------------------
    vocabulary:
        list of words.
    min_words, max_words:
        sentence length bounds (defaults 3 and 12).
    zipf_exponent:
        word popularity skew (default 1.0; 0 disables skew).
    """

    name = "text"

    def parameter_names(self):
        return {"vocabulary", "min_words", "max_words", "zipf_exponent"}

    def _validate_params(self):
        vocab = self._params.get("vocabulary")
        if vocab is not None and len(vocab) == 0:
            raise ValueError("vocabulary must be non-empty")
        lo = self._params.get("min_words", 3)
        hi = self._params.get("max_words", 12)
        if lo < 1 or hi < lo:
            raise ValueError("need 1 <= min_words <= max_words")

    def run_many(self, ids, stream, *dependency_arrays):
        vocab = self._params.get("vocabulary")
        if vocab is None:
            raise ValueError("TextGenerator needs 'vocabulary'")
        lo = int(self._params.get("min_words", 3))
        hi = int(self._params.get("max_words", 12))
        exponent = float(self._params.get("zipf_exponent", 1.0))
        if exponent > 0:
            ranks = np.arange(1, len(vocab) + 1, dtype=np.float64)
            weights = ranks ** (-exponent)
            cdf = np.cumsum(weights / weights.sum())
        else:
            cdf = np.linspace(
                1.0 / len(vocab), 1.0, len(vocab)
            )
        ids = np.asarray(ids, dtype=np.int64)
        lengths = stream.substream("len").randint(ids, lo, hi + 1)
        out = np.empty(ids.size, dtype=object)
        word_stream = stream.substream("words")
        for i, instance in enumerate(ids):
            per_instance = word_stream.indexed_substream(int(instance))
            draws = per_instance.uniform(
                np.arange(int(lengths[i]), dtype=np.int64)
            )
            codes = np.searchsorted(cdf, draws, side="right")
            out[i] = " ".join(
                vocab[min(int(c), len(vocab) - 1)] for c in codes
            )
        return out


class TemplateGenerator(PropertyGenerator):
    """Fill a format template with dependency values and the id.

    Parameters (via ``initialize``)
    -------------------------------
    template:
        a ``str.format`` template; ``{id}`` and ``{0}``, ``{1}``, ...
        refer to the instance id and the dependency values.

    Example: ``template="{0} from {1} (member #{id})"`` with
    dependencies ``(name, country)``.
    """

    name = "template"

    def parameter_names(self):
        return {"template"}

    def _validate_params(self):
        if "template" in self._params and not isinstance(
            self._params["template"], str
        ):
            raise ValueError("template must be a string")

    def num_dependencies(self):
        return None

    def run_many(self, ids, stream, *dependency_arrays):
        template = self._params.get("template")
        if template is None:
            raise ValueError("TemplateGenerator needs 'template'")
        ids = np.asarray(ids, dtype=np.int64)
        columns = [np.asarray(dep) for dep in dependency_arrays]
        out = np.empty(ids.size, dtype=object)
        for i in range(ids.size):
            args = [col[i] for col in columns]
            out[i] = template.format(*args, id=int(ids[i]))
        return out
