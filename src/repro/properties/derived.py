"""Derived-value generators: pure functions of dependencies.

These carry irreducible per-row Python work (a user callable, a dict
probe), so the batched rewrite cannot remove the loop — it removes the
loop's *overhead*: iteration runs over ``tolist()`` scalars / zipped
columns into a list comprehension instead of indexing numpy arrays
element by element, and missing-key handling uses a single sentinel
``dict.get`` per row instead of two hash probes.
"""

from __future__ import annotations

import numpy as np

from .base import PropertyGenerator

__all__ = ["FormulaGenerator", "LookupGenerator"]

_MISSING = object()


class FormulaGenerator(PropertyGenerator):
    """Apply a user callable to the dependency values.

    Parameters (via ``initialize``)
    -------------------------------
    function:
        callable ``(*dependency_values) -> value`` applied per instance,
        or — with ``vectorized=True`` — ``(*dependency_arrays) -> array``.
    vectorized:
        whether ``function`` handles whole arrays (default False).
    dtype:
        output dtype tag for the table (default object).

    Note: the function receives no randomness, so it is trivially
    in-place-reproducible.
    """

    name = "formula"
    access = "random"

    def parameter_names(self):
        return {"function", "vectorized", "dtype"}

    def _validate_params(self):
        fn = self._params.get("function")
        if fn is not None and not callable(fn):
            raise ValueError("function must be callable")

    def num_dependencies(self):
        return None

    def run_many(self, ids, stream, *dependency_arrays):
        fn = self._params.get("function")
        if fn is None:
            raise ValueError("FormulaGenerator needs 'function'")
        ids = np.asarray(ids, dtype=np.int64)
        columns = [np.asarray(dep) for dep in dependency_arrays]
        if self._params.get("vectorized", False):
            return np.asarray(fn(*columns))
        out = np.empty(ids.size, dtype=self.output_dtype())
        # zip over the arrays keeps the numpy scalar types the legacy
        # indexing loop passed to the callable.
        if columns:
            out[:] = [fn(*args) for args in zip(*columns)]
        else:
            out[:] = [fn() for _ in range(ids.size)]
        return out

    def output_dtype(self):
        tag = self._params.get("dtype")
        if tag is None:
            return np.dtype(object)
        return np.dtype(tag)


class LookupGenerator(PropertyGenerator):
    """Map one dependency through a dict (with optional default)."""

    name = "lookup"
    supports_out = True
    access = "random"

    def parameter_names(self):
        return {"mapping", "default"}

    def _validate_params(self):
        mapping = self._params.get("mapping")
        if mapping is not None and not isinstance(mapping, dict):
            raise ValueError("mapping must be a dict")

    def num_dependencies(self):
        return 1

    def run_many(self, ids, stream, *dependency_arrays, out=None):
        mapping = self._params.get("mapping")
        if mapping is None:
            raise ValueError("LookupGenerator needs 'mapping'")
        if len(dependency_arrays) != 1:
            raise ValueError("LookupGenerator takes exactly one dependency")
        keys = np.asarray(dependency_arrays[0])
        out = self._out_buffer(keys.size, out, dtype=object)
        fallback = (
            self._params["default"] if "default" in self._params
            else _MISSING
        )
        get = mapping.get
        values = [get(key, fallback) for key in keys.tolist()]
        if fallback is _MISSING:
            for i, value in enumerate(values):
                if value is _MISSING:
                    raise KeyError(
                        f"no mapping for {keys[i]!r} and no default"
                    )
        out[:] = values
        return out
