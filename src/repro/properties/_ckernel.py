"""Optional compiled inner loops for the attribute kernels.

After the batched rewrite, two property pipelines keep an irreducible
per-draw loop even in numpy: weighted sampling *without replacement*
(every pick renormalises the remaining weights the next pick reads)
and the ragged word draws of :class:`~repro.properties.text.
TextGenerator` (draw + binary search per word, where numpy pays one
pass per round instead of one pass total).  When a system C compiler
is present this module compiles both loops into a cached shared object
(via :mod:`repro.core.ccompile` — the same zero-install contract as
the matching kernel) and the generators call them through ``ctypes``;
otherwise the pure-numpy pipelines take over silently.

Bit-exactness contract:

* the SplitMix64 mix, counter advance and ``[0, 1)`` conversion are
  transliterated from :mod:`repro.prng.splitmix` — ``(mix64(state)
  >> 11) * 2**-53`` is exact in both languages, so draws are bitwise
  identical to ``RandomStream.uniform``;
* ``ragged_cdf_codes`` binary-searches the caller's cdf with
  ``numpy.searchsorted(side="right")`` semantics, so codes equal the
  numpy path's for the same cdf;
* ``multivalue_picks`` replays the legacy sequential inverse-transform
  draws; remaining-weight totals use the same pairwise summation
  numpy's ``w.sum()`` performs (8-way unrolled blocks of 128, halving
  recursion above), so the normalised cdf a draw is compared against
  carries the exact bits of the frozen legacy generator.

Selection: ``REPRO_PROP_IMPL=auto|numpy|c`` (default ``auto`` — C when
available); ``REPRO_NO_CKERNEL=1`` disables compilation globally.
"""

from __future__ import annotations

import ctypes
import os

import numpy as np

from ..core.ccompile import ckernels_disabled, compile_cached

__all__ = ["load_property_ckernel", "resolve_impl"]

_SOURCE = r"""
#include <stdint.h>

static inline uint64_t mix64(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

/* The index-th output of the SplitMix64 stream `seed`, mapped to
   [0, 1) exactly as RandomStream.uniform does. */
static inline double u01(uint64_t seed, uint64_t index)
{
    uint64_t state = seed + (index + 1ULL) * 0x9E3779B97F4A7C15ULL;
    return (double)(mix64(state) >> 11) * (1.0 / 9007199254740992.0);
}

/* numpy's pairwise summation (8-way unrolled blocks of <= 128,
   halving recursion above), so totals match w.sum() bit-for-bit. */
static double pairwise_sum(const double *a, int64_t n)
{
    if (n < 8) {
        double res = 0.0;
        for (int64_t i = 0; i < n; ++i) res += a[i];
        return res;
    }
    if (n <= 128) {
        double r[8];
        for (int64_t j = 0; j < 8; ++j) r[j] = a[j];
        int64_t i = 8;
        for (; i < n - (n % 8); i += 8)
            for (int64_t j = 0; j < 8; ++j) r[j] += a[i + j];
        double res = ((r[0] + r[1]) + (r[2] + r[3]))
                   + ((r[4] + r[5]) + (r[6] + r[7]));
        for (; i < n; ++i) res += a[i];
        return res;
    }
    int64_t n2 = n / 2;
    n2 -= n2 % 8;
    return pairwise_sum(a, n2) + pairwise_sum(a + n2, n - n2);
}

/* searchsorted(cdf, u, side="right"): first index with cdf[i] > u. */
static inline int64_t bisect_right(const double *cdf, int64_t v, double u)
{
    int64_t lo = 0, hi = v;
    while (lo < hi) {
        int64_t mid = (lo + hi) >> 1;
        if (cdf[mid] <= u) lo = mid + 1;
        else hi = mid;
    }
    return lo;
}

/* Ragged categorical draws over one shared cdf: instance i consumes
   lengths[i] uniforms from its substream (seeds[i]) and each is
   inverse-transformed through cdf[0..v).  Codes land flat, segment i
   at sum(lengths[:i]). */
void ragged_cdf_codes(
    int64_t n, int64_t v,
    const uint64_t *seeds,
    const int64_t *lengths,
    const double *cdf,
    int64_t *codes)
{
    int64_t cursor = 0;
    for (int64_t i = 0; i < n; ++i) {
        uint64_t seed = seeds[i];
        int64_t len = lengths[i];
        for (int64_t j = 0; j < len; ++j) {
            int64_t code = bisect_right(cdf, v, u01(seed, (uint64_t)j));
            if (code >= v) code = v - 1;
            codes[cursor++] = code;
        }
    }
}

/* Weighted sampling without replacement, replaying the legacy
   sequential draws: pick d of instance i uses uniform(seed_i, d) and
   the cdf cumsum(remaining)/sum(remaining) with numpy's exact
   float64 operation order (sequential cumsum, pairwise sum). */
void multivalue_picks(
    int64_t n, int64_t k,
    const uint64_t *seeds,
    const int64_t *sizes,
    const double *weights,
    double *scratch,      /* k doubles */
    int64_t *codes)       /* sum(sizes) */
{
    int64_t cursor = 0;
    for (int64_t i = 0; i < n; ++i) {
        uint64_t seed = seeds[i];
        int64_t size = sizes[i];
        for (int64_t j = 0; j < k; ++j) scratch[j] = weights[j];
        for (int64_t d = 0; d < size; ++d) {
            double total = pairwise_sum(scratch, k);
            double u = u01(seed, (uint64_t)d);
            double acc = 0.0;
            int64_t code = k - 1;
            for (int64_t j = 0; j < k; ++j) {
                acc += scratch[j];
                if (acc / total > u) { code = j; break; }
            }
            codes[cursor++] = code;
            scratch[code] = 0.0;
        }
    }
}
"""

_U64P = np.ctypeslib.ndpointer(dtype=np.uint64, flags="C_CONTIGUOUS")
_I64P = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_F64P = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")


class _PropertyCKernel:
    """ctypes facade over the compiled attribute loops."""

    def __init__(self, lib):
        self._lib = lib
        lib.ragged_cdf_codes.restype = None
        lib.ragged_cdf_codes.argtypes = [
            ctypes.c_int64, ctypes.c_int64,
            _U64P, _I64P, _F64P, _I64P,
        ]
        lib.multivalue_picks.restype = None
        lib.multivalue_picks.argtypes = [
            ctypes.c_int64, ctypes.c_int64,
            _U64P, _I64P, _F64P, _F64P, _I64P,
        ]

    def ragged_cdf_codes(self, seeds, lengths, cdf):
        """Flat codes + offsets for per-instance cdf draws."""
        seeds = np.ascontiguousarray(seeds, dtype=np.uint64)
        lengths = np.ascontiguousarray(lengths, dtype=np.int64)
        cdf = np.ascontiguousarray(cdf, dtype=np.float64)
        offsets = np.zeros(seeds.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        codes = np.empty(int(offsets[-1]), dtype=np.int64)
        self._lib.ragged_cdf_codes(
            seeds.size, cdf.size, seeds, lengths, cdf, codes
        )
        return codes, offsets

    def multivalue_picks(self, seeds, sizes, weights):
        """Flat pick codes + offsets for weighted no-replacement sets."""
        seeds = np.ascontiguousarray(seeds, dtype=np.uint64)
        sizes = np.ascontiguousarray(sizes, dtype=np.int64)
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        offsets = np.zeros(seeds.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        codes = np.empty(int(offsets[-1]), dtype=np.int64)
        scratch = np.empty(weights.size, dtype=np.float64)
        self._lib.multivalue_picks(
            seeds.size, weights.size, seeds, sizes, weights,
            scratch, codes,
        )
        return codes, offsets


_LOADED = False
_KERNEL = None


def _load():
    """One compile attempt per process; ``None`` on any failure."""
    global _LOADED, _KERNEL
    if not _LOADED:
        _LOADED = True
        if not ckernels_disabled():
            try:
                lib = compile_cached(_SOURCE, "propkernel")
                _KERNEL = (
                    _PropertyCKernel(lib) if lib is not None else None
                )
            except Exception:
                _KERNEL = None
    return _KERNEL


def load_property_ckernel():
    """The compiled attribute kernel, or ``None`` when unavailable.

    Mirrors the matching kernel's loader: one compile attempt per
    process, silent numpy fallback on any failure, ``None`` when
    ``REPRO_NO_CKERNEL`` is set or ``REPRO_PROP_IMPL=numpy`` forces
    the pure path — and a hard error when ``REPRO_PROP_IMPL=c``
    demands a kernel that cannot load (via :func:`resolve_impl`).
    """
    return _load() if resolve_impl() == "c" else None


def resolve_impl(requested=None):
    """Resolve ``auto``/env selection to ``"numpy"`` or ``"c"``.

    ``requested`` overrides ``REPRO_PROP_IMPL``; ``auto`` (default)
    answers ``"c"`` only when a kernel actually loads.  Forcing
    ``"c"`` when no kernel can load raises, exactly like the matching
    kernel's ``impl="c"``.
    """
    choice = requested or os.environ.get("REPRO_PROP_IMPL", "auto")
    if choice not in ("auto", "numpy", "c"):
        raise ValueError(
            f"unknown property impl {choice!r}; "
            "expected auto, numpy or c"
        )
    if choice == "numpy":
        return "numpy"
    if choice == "c":
        if _load() is None:
            raise RuntimeError(
                "REPRO_PROP_IMPL=c requested but no C kernel is "
                "available (no compiler, or REPRO_NO_CKERNEL=1)"
            )
        return "c"
    return "c" if _load() is not None else "numpy"
