"""Date / timestamp property generators, including correlated ones.

The running example requires "knows creationDate is greater than the
creationDate of two connected Persons" — a *binary logical relation
between numerical values* (Section 2).  :class:`AfterDependencyGenerator`
implements exactly that: its output is guaranteed to exceed the maximum
of its dependency values.

Timestamps are plain int64 epoch seconds; formatting to ISO strings is
an I/O concern (:mod:`repro.io`).
"""

from __future__ import annotations

import numpy as np

from .base import PropertyGenerator

__all__ = ["DateRangeGenerator", "AfterDependencyGenerator"]

_SECONDS_PER_DAY = 86_400


class DateRangeGenerator(PropertyGenerator):
    """Uniform timestamps within ``[start, end)`` (epoch seconds).

    Parameters (via ``initialize``)
    -------------------------------
    start, end:
        epoch-second bounds.
    granularity:
        "second" (default) or "day" — day granularity rounds down to
        midnight, the common shape of creationDate-style properties.
    """

    name = "date_range"
    supports_out = True
    access = "random"

    def parameter_names(self):
        return {"start", "end", "granularity"}

    def _validate_params(self):
        start = self._params.get("start")
        end = self._params.get("end")
        if start is not None and end is not None and end <= start:
            raise ValueError("need start < end")
        gran = self._params.get("granularity", "second")
        if gran not in ("second", "day"):
            raise ValueError("granularity must be 'second' or 'day'")

    def run_many(self, ids, stream, *dependency_arrays, out=None):
        start = self._params.get("start")
        end = self._params.get("end")
        if start is None or end is None:
            raise ValueError("DateRangeGenerator needs 'start' and 'end'")
        ids = np.asarray(ids, dtype=np.int64)
        values = stream.randint(ids, int(start), int(end))
        if self._params.get("granularity", "second") == "day":
            np.floor_divide(values, _SECONDS_PER_DAY, out=values)
            np.multiply(values, _SECONDS_PER_DAY, out=values)
        if out is None:
            return values
        out[:] = values
        return out

    def output_dtype(self):
        return np.dtype(np.int64)


class AfterDependencyGenerator(PropertyGenerator):
    """Timestamps strictly greater than all dependency timestamps.

    ``value = max(deps) + offset`` where ``offset`` is drawn uniformly
    from ``[min_gap, max_gap)``.  With the dependencies being the two
    endpoint creation dates of a ``knows`` edge, this realises the
    running example's constraint exactly (and *strictly*: ``min_gap``
    defaults to 1 second).
    """

    name = "after_dependency"
    supports_out = True
    access = "random"

    def parameter_names(self):
        return {"min_gap", "max_gap"}

    def _validate_params(self):
        min_gap = self._params.get("min_gap", 1)
        max_gap = self._params.get("max_gap", 365 * _SECONDS_PER_DAY)
        if min_gap < 0:
            raise ValueError("min_gap must be nonnegative")
        if max_gap <= min_gap:
            raise ValueError("need min_gap < max_gap")

    def num_dependencies(self):
        return None  # one or more timestamp dependencies

    def run_many(self, ids, stream, *dependency_arrays, out=None):
        if not dependency_arrays:
            raise ValueError(
                "AfterDependencyGenerator needs at least one dependency"
            )
        ids = np.asarray(ids, dtype=np.int64)
        # One reduction buffer (doubling as the output) instead of a
        # fresh maximum per dependency.
        acc = self._out_buffer(ids.size, out)
        acc[:] = np.asarray(dependency_arrays[0], dtype=np.int64)
        for dep in dependency_arrays[1:]:
            np.maximum(acc, np.asarray(dep, dtype=np.int64), out=acc)
        min_gap = int(self._params.get("min_gap", 1))
        max_gap = int(self._params.get("max_gap", 365 * _SECONDS_PER_DAY))
        np.add(acc, stream.randint(ids, min_gap, max_gap), out=acc)
        return acc

    def output_dtype(self):
        return np.dtype(np.int64)
