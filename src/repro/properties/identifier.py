"""Identifier generators: uuids correlated with the id (Section 4.1).

"Passing the id to run allows the generation of user-controlled uuids
that can be correlated with other properties such as the time."

The batched rewrite draws both uuid halves as whole-array SplitMix
passes (the legacy loop re-derived the ``"high"`` substream — a string
hash — once *per row*) and assembles the hex strings with C-level
``map``/``%``-formatting over ``tolist()`` scalars, the string
strategy measured fastest in :mod:`repro.io.chunks`.
"""

from __future__ import annotations

import numpy as np

from .base import PropertyGenerator

__all__ = ["UuidGenerator", "CompositeKeyGenerator"]


class UuidGenerator(PropertyGenerator):
    """Deterministic 128-bit hex identifiers derived from (stream, id).

    The leading 16 hex digits are the mixed id (so ids sort the same as
    uuids when ``time_ordered=True``), the trailing 16 come from the
    stream — a user-controlled uuid in the paper's sense.
    """

    name = "uuid"
    supports_out = True
    access = "random"

    def parameter_names(self):
        return {"time_ordered"}

    def run_many(self, ids, stream, *dependency_arrays, out=None):
        ids = np.asarray(ids, dtype=np.int64)
        random_half = stream.raw(ids)
        if bool(self._params.get("time_ordered", False)):
            high = (ids.astype(np.uint64)
                    & np.uint64(2 ** 64 - 1)).tolist()
        else:
            high = stream.substream("high").raw(ids).tolist()
        out = self._out_buffer(ids.size, out)
        out[:] = [
            "%016x%016x" % pair
            for pair in zip(high, random_half.tolist())
        ]
        return out


class CompositeKeyGenerator(PropertyGenerator):
    """Keys of the form ``prefix-<id>`` (human-readable surrogate keys)."""

    name = "composite_key"
    supports_out = True
    access = "random"

    def parameter_names(self):
        return {"prefix"}

    def run_many(self, ids, stream, *dependency_arrays, out=None):
        prefix = str(self._params.get("prefix", "id"))
        ids = np.asarray(ids, dtype=np.int64)
        out = self._out_buffer(ids.size, out)
        stem = prefix + "-"
        out[:] = [stem + s for s in map(str, ids.tolist())]
        return out
