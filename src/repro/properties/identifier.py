"""Identifier generators: uuids correlated with the id (Section 4.1).

"Passing the id to run allows the generation of user-controlled uuids
that can be correlated with other properties such as the time."
"""

from __future__ import annotations

import numpy as np

from .base import PropertyGenerator

__all__ = ["UuidGenerator", "CompositeKeyGenerator"]


class UuidGenerator(PropertyGenerator):
    """Deterministic 128-bit hex identifiers derived from (stream, id).

    The leading 16 hex digits are the mixed id (so ids sort the same as
    uuids when ``time_ordered=True``), the trailing 16 come from the
    stream — a user-controlled uuid in the paper's sense.
    """

    name = "uuid"

    def parameter_names(self):
        return {"time_ordered"}

    def run_many(self, ids, stream, *dependency_arrays):
        ids = np.asarray(ids, dtype=np.int64)
        random_half = stream.raw(ids)
        time_ordered = bool(self._params.get("time_ordered", False))
        out = np.empty(ids.size, dtype=object)
        for i in range(ids.size):
            if time_ordered:
                high = int(ids[i])
            else:
                high = int(stream.substream("high").raw(np.int64(ids[i])))
            out[i] = f"{high & (2**64 - 1):016x}{int(random_half[i]):016x}"
        return out


class CompositeKeyGenerator(PropertyGenerator):
    """Keys of the form ``prefix-<id>`` (human-readable surrogate keys)."""

    name = "composite_key"

    def parameter_names(self):
        return {"prefix"}

    def run_many(self, ids, stream, *dependency_arrays):
        prefix = str(self._params.get("prefix", "id"))
        ids = np.asarray(ids, dtype=np.int64)
        out = np.empty(ids.size, dtype=object)
        for i in range(ids.size):
            out[i] = f"{prefix}-{int(ids[i])}"
        return out
