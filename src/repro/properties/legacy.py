"""Frozen pre-vectorisation property generators (reference semantics).

Every ``run_many`` body below is the per-row implementation that
shipped before the batched attribute-kernel rewrite, copied verbatim.
They define the value contract: the vectorised generators in the
sibling modules must produce **identical values** for identical
``(ids, stream, deps)`` inputs, which ``tests/golden/properties/``
pins against committed fixtures and
``tests/test_properties_vectorised.py`` re-checks property-based.

These classes subclass the live generators, so parameters, validation
and ``output_dtype`` stay shared — only the generation loop is frozen.
They are kept importable (not dead code) because the benchmark suite
(``benchmarks/bench_properties.py``) measures the vectorised kernels
against them to produce the committed ``speedup_vs_legacy`` rows in
``BENCH_properties.json``.

Do not edit the loop bodies; regenerating the golden fixtures against
edited legacy code would silently re-pin new semantics.
"""

from __future__ import annotations

import numpy as np

from .categorical import (
    CategoricalGenerator,
    ConditionalGenerator,
    WeightedDictGenerator,
)
from .datetime_gen import AfterDependencyGenerator, DateRangeGenerator
from .derived import FormulaGenerator, LookupGenerator
from .identifier import CompositeKeyGenerator, UuidGenerator
from .multivalue import MultiValueGenerator
from .numeric import (
    NormalGenerator,
    SequenceGenerator,
    UniformFloatGenerator,
    UniformIntGenerator,
    ZipfIntGenerator,
)
from .text import TemplateGenerator, TextGenerator

__all__ = ["LEGACY_GENERATORS", "create_legacy_generator"]


class LegacyTextGenerator(TextGenerator):
    supports_out = False

    def run_many(self, ids, stream, *dependency_arrays):
        vocab = self._params.get("vocabulary")
        if vocab is None:
            raise ValueError("TextGenerator needs 'vocabulary'")
        lo = int(self._params.get("min_words", 3))
        hi = int(self._params.get("max_words", 12))
        exponent = float(self._params.get("zipf_exponent", 1.0))
        if exponent > 0:
            ranks = np.arange(1, len(vocab) + 1, dtype=np.float64)
            weights = ranks ** (-exponent)
            cdf = np.cumsum(weights / weights.sum())
        else:
            cdf = np.linspace(
                1.0 / len(vocab), 1.0, len(vocab)
            )
        ids = np.asarray(ids, dtype=np.int64)
        lengths = stream.substream("len").randint(ids, lo, hi + 1)
        out = np.empty(ids.size, dtype=object)
        word_stream = stream.substream("words")
        for i, instance in enumerate(ids):
            per_instance = word_stream.indexed_substream(int(instance))
            draws = per_instance.uniform(
                np.arange(int(lengths[i]), dtype=np.int64)
            )
            codes = np.searchsorted(cdf, draws, side="right")
            out[i] = " ".join(
                vocab[min(int(c), len(vocab) - 1)] for c in codes
            )
        return out


class LegacyTemplateGenerator(TemplateGenerator):
    supports_out = False

    def run_many(self, ids, stream, *dependency_arrays):
        template = self._params.get("template")
        if template is None:
            raise ValueError("TemplateGenerator needs 'template'")
        ids = np.asarray(ids, dtype=np.int64)
        columns = [np.asarray(dep) for dep in dependency_arrays]
        out = np.empty(ids.size, dtype=object)
        for i in range(ids.size):
            args = [col[i] for col in columns]
            out[i] = template.format(*args, id=int(ids[i]))
        return out


class LegacyCategoricalGenerator(CategoricalGenerator):
    supports_out = False

    def _cdf(self):
        values = self._params["values"]
        weights = self._params.get("weights")
        if weights is None:
            w = np.full(len(values), 1.0 / len(values))
        else:
            w = np.asarray(weights, dtype=np.float64)
            w = w / w.sum()
        return np.cumsum(w)

    def run_many(self, ids, stream, *dependency_arrays):
        if "values" not in self._params:
            raise ValueError("CategoricalGenerator needs 'values'")
        ids = np.asarray(ids, dtype=np.int64)
        u = stream.uniform(ids)
        codes = np.searchsorted(self._cdf(), u, side="right")
        values = self._params["values"]
        out = np.empty(ids.size, dtype=self.output_dtype())
        for i, code in enumerate(codes):
            out[i] = values[min(int(code), len(values) - 1)]
        return out


class LegacyConditionalGenerator(ConditionalGenerator):
    supports_out = False

    def run_many(self, ids, stream, *dependency_arrays):
        if "table" not in self._params:
            raise ValueError("ConditionalGenerator needs 'table'")
        if not dependency_arrays:
            raise ValueError(
                "ConditionalGenerator requires at least one dependency"
            )
        ids = np.asarray(ids, dtype=np.int64)
        u = stream.uniform(ids)
        out = np.empty(ids.size, dtype=object)
        columns = [np.asarray(dep) for dep in dependency_arrays]
        cdf_cache = {}
        for i in range(ids.size):
            key = tuple(col[i] for col in columns)
            key = self._normalise_key(key)
            if key not in cdf_cache:
                values, weights = self._lookup(key)
                if weights is None:
                    w = np.full(len(values), 1.0 / len(values))
                else:
                    w = np.asarray(weights, dtype=np.float64)
                    w = w / w.sum()
                cdf_cache[key] = (values, np.cumsum(w))
            values, cdf = cdf_cache[key]
            code = int(np.searchsorted(cdf, u[i], side="right"))
            out[i] = values[min(code, len(values) - 1)]
        return out


class LegacyWeightedDictGenerator(WeightedDictGenerator):
    supports_out = False

    def run_many(self, ids, stream, *dependency_arrays):
        values = self._params.get("values")
        if values is None:
            raise ValueError("WeightedDictGenerator needs 'values'")
        exponent = float(self._params.get("exponent", 1.0))
        ranks = np.arange(1, len(values) + 1, dtype=np.float64)
        weights = ranks ** (-exponent)
        cdf = np.cumsum(weights / weights.sum())
        ids = np.asarray(ids, dtype=np.int64)
        codes = np.searchsorted(cdf, stream.uniform(ids), side="right")
        out = np.empty(ids.size, dtype=object)
        for i, code in enumerate(codes):
            out[i] = values[min(int(code), len(values) - 1)]
        return out


class LegacyMultiValueGenerator(MultiValueGenerator):
    supports_out = False

    def run_many(self, ids, stream, *dependency_arrays):
        values = self._params.get("values")
        if values is None:
            raise ValueError("MultiValueGenerator needs 'values'")
        lo = int(self._params.get("min_size", 1))
        hi = int(self._params.get("max_size", 3))
        exponent = float(self._params.get("exponent", 1.0))
        universe = len(values)
        ranks = np.arange(1, universe + 1, dtype=np.float64)
        weights = ranks ** (-exponent) if exponent > 0 \
            else np.ones(universe)

        ids = np.asarray(ids, dtype=np.int64)
        sizes = stream.substream("size").randint(ids, lo, hi + 1)
        pick_stream = stream.substream("picks")
        out = np.empty(ids.size, dtype=object)
        for i, instance in enumerate(ids):
            per_instance = pick_stream.indexed_substream(int(instance))
            chosen = []
            remaining = weights.copy()
            for draw in range(int(sizes[i])):
                code = int(
                    per_instance.choice(np.int64(draw), remaining)
                )
                chosen.append(code)
                remaining[code] = 0.0
            chosen.sort()
            out[i] = tuple(values[c] for c in chosen)
        return out


class LegacyUuidGenerator(UuidGenerator):
    supports_out = False

    def run_many(self, ids, stream, *dependency_arrays):
        ids = np.asarray(ids, dtype=np.int64)
        random_half = stream.raw(ids)
        time_ordered = bool(self._params.get("time_ordered", False))
        out = np.empty(ids.size, dtype=object)
        for i in range(ids.size):
            if time_ordered:
                high = int(ids[i])
            else:
                high = int(stream.substream("high").raw(np.int64(ids[i])))
            out[i] = f"{high & (2**64 - 1):016x}{int(random_half[i]):016x}"
        return out


class LegacyCompositeKeyGenerator(CompositeKeyGenerator):
    supports_out = False

    def run_many(self, ids, stream, *dependency_arrays):
        prefix = str(self._params.get("prefix", "id"))
        ids = np.asarray(ids, dtype=np.int64)
        out = np.empty(ids.size, dtype=object)
        for i in range(ids.size):
            out[i] = f"{prefix}-{int(ids[i])}"
        return out


class LegacyFormulaGenerator(FormulaGenerator):
    supports_out = False

    def run_many(self, ids, stream, *dependency_arrays):
        fn = self._params.get("function")
        if fn is None:
            raise ValueError("FormulaGenerator needs 'function'")
        ids = np.asarray(ids, dtype=np.int64)
        columns = [np.asarray(dep) for dep in dependency_arrays]
        if self._params.get("vectorized", False):
            return np.asarray(fn(*columns))
        out = np.empty(ids.size, dtype=self.output_dtype())
        for i in range(ids.size):
            out[i] = fn(*(col[i] for col in columns))
        return out


class LegacyLookupGenerator(LookupGenerator):
    supports_out = False

    def run_many(self, ids, stream, *dependency_arrays):
        mapping = self._params.get("mapping")
        if mapping is None:
            raise ValueError("LookupGenerator needs 'mapping'")
        if len(dependency_arrays) != 1:
            raise ValueError("LookupGenerator takes exactly one dependency")
        keys = np.asarray(dependency_arrays[0])
        has_default = "default" in self._params
        default = self._params.get("default")
        out = np.empty(keys.size, dtype=object)
        for i, key in enumerate(keys):
            if key in mapping:
                out[i] = mapping[key]
            elif has_default:
                out[i] = default
            else:
                raise KeyError(f"no mapping for {key!r} and no default")
        return out


class LegacyDateRangeGenerator(DateRangeGenerator):
    supports_out = False

    def run_many(self, ids, stream, *dependency_arrays):
        start = self._params.get("start")
        end = self._params.get("end")
        if start is None or end is None:
            raise ValueError("DateRangeGenerator needs 'start' and 'end'")
        values = stream.randint(
            np.asarray(ids, dtype=np.int64), int(start), int(end)
        )
        if self._params.get("granularity", "second") == "day":
            values = (values // 86_400) * 86_400
        return values


class LegacyAfterDependencyGenerator(AfterDependencyGenerator):
    supports_out = False

    def run_many(self, ids, stream, *dependency_arrays):
        if not dependency_arrays:
            raise ValueError(
                "AfterDependencyGenerator needs at least one dependency"
            )
        ids = np.asarray(ids, dtype=np.int64)
        base = np.asarray(dependency_arrays[0], dtype=np.int64)
        for dep in dependency_arrays[1:]:
            base = np.maximum(base, np.asarray(dep, dtype=np.int64))
        min_gap = int(self._params.get("min_gap", 1))
        max_gap = int(self._params.get("max_gap", 365 * 86_400))
        offsets = stream.randint(ids, min_gap, max_gap)
        return base + offsets


class LegacyUniformIntGenerator(UniformIntGenerator):
    supports_out = False

    def run_many(self, ids, stream, *dependency_arrays):
        high = self._params.get("high")
        if high is None:
            raise ValueError("UniformIntGenerator needs 'high'")
        low = int(self._params.get("low", 0))
        return stream.randint(np.asarray(ids, dtype=np.int64), low, int(high))


class LegacyUniformFloatGenerator(UniformFloatGenerator):
    supports_out = False

    def run_many(self, ids, stream, *dependency_arrays):
        low = float(self._params.get("low", 0.0))
        high = float(self._params.get("high", 1.0))
        u = stream.uniform(np.asarray(ids, dtype=np.int64))
        return low + u * (high - low)


class LegacyNormalGenerator(NormalGenerator):
    supports_out = False

    def run_many(self, ids, stream, *dependency_arrays):
        values = stream.normal(
            np.asarray(ids, dtype=np.int64),
            float(self._params.get("mean", 0.0)),
            float(self._params.get("std", 1.0)),
        )
        lo = self._params.get("clip_low")
        hi = self._params.get("clip_high")
        if lo is not None or hi is not None:
            values = np.clip(
                values,
                -np.inf if lo is None else lo,
                np.inf if hi is None else hi,
            )
        return values


class LegacyZipfIntGenerator(ZipfIntGenerator):
    supports_out = False

    def run_many(self, ids, stream, *dependency_arrays):
        k = self._params.get("k")
        if k is None:
            raise ValueError("ZipfIntGenerator needs 'k'")
        exponent = float(self._params.get("exponent", 1.0))
        ranks = np.arange(1, int(k) + 1, dtype=np.float64)
        weights = ranks ** (-exponent)
        cdf = np.cumsum(weights / weights.sum())
        codes = np.searchsorted(
            cdf, stream.uniform(np.asarray(ids, dtype=np.int64)),
            side="right",
        )
        return (codes + 1).astype(np.int64)


class LegacySequenceGenerator(SequenceGenerator):
    supports_out = False

    def run_many(self, ids, stream, *dependency_arrays):
        start = int(self._params.get("start", 0))
        step = int(self._params.get("step", 1))
        return start + step * np.asarray(ids, dtype=np.int64)


#: name -> frozen class, for every registered builtin generator.
LEGACY_GENERATORS = {
    "text": LegacyTextGenerator,
    "template": LegacyTemplateGenerator,
    "categorical": LegacyCategoricalGenerator,
    "conditional": LegacyConditionalGenerator,
    "weighted_dict": LegacyWeightedDictGenerator,
    "multi_value": LegacyMultiValueGenerator,
    "uuid": LegacyUuidGenerator,
    "composite_key": LegacyCompositeKeyGenerator,
    "formula": LegacyFormulaGenerator,
    "lookup": LegacyLookupGenerator,
    "date_range": LegacyDateRangeGenerator,
    "after_dependency": LegacyAfterDependencyGenerator,
    "uniform_int": LegacyUniformIntGenerator,
    "uniform_float": LegacyUniformFloatGenerator,
    "normal": LegacyNormalGenerator,
    "zipf_int": LegacyZipfIntGenerator,
    "sequence": LegacySequenceGenerator,
}


def create_legacy_generator(name, **params):
    """Instantiate the frozen pre-rewrite generator registered as ``name``."""
    if name not in LEGACY_GENERATORS:
        raise KeyError(
            f"no frozen legacy generator {name!r}; "
            f"available: {sorted(LEGACY_GENERATORS)}"
        )
    return LEGACY_GENERATORS[name](**params)
