"""Property generator registry (DSL name resolution)."""

from __future__ import annotations

from .base import PropertyGenerator
from .categorical import (
    CategoricalGenerator,
    ConditionalGenerator,
    WeightedDictGenerator,
)
from .datetime_gen import AfterDependencyGenerator, DateRangeGenerator
from .derived import FormulaGenerator, LookupGenerator
from .identifier import CompositeKeyGenerator, UuidGenerator
from .multivalue import MultiValueGenerator
from .numeric import (
    NormalGenerator,
    SequenceGenerator,
    UniformFloatGenerator,
    UniformIntGenerator,
    ZipfIntGenerator,
)
from .text import TemplateGenerator, TextGenerator

__all__ = [
    "available_property_generators",
    "create_property_generator",
    "register_property_generator",
]

_REGISTRY: dict[str, type] = {}


def register_property_generator(factory, name=None):
    """Register a PG class under ``name`` (defaults to its ``name`` attr)."""
    key = name or factory.name
    if not key or key == "abstract":
        raise ValueError("property generator needs a concrete name")
    _REGISTRY[key] = factory
    return factory


def available_property_generators():
    """Mapping of name -> PG class (copy)."""
    return dict(_REGISTRY)


def create_property_generator(name, **params):
    """Instantiate a registered PG by name."""
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown property generator {name!r}; "
            f"available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name](**params)


for _factory in (
    CategoricalGenerator,
    ConditionalGenerator,
    WeightedDictGenerator,
    DateRangeGenerator,
    AfterDependencyGenerator,
    FormulaGenerator,
    LookupGenerator,
    MultiValueGenerator,
    UuidGenerator,
    CompositeKeyGenerator,
    NormalGenerator,
    SequenceGenerator,
    UniformFloatGenerator,
    UniformIntGenerator,
    ZipfIntGenerator,
    TemplateGenerator,
    TextGenerator,
):
    register_property_generator(_factory)
