"""The Property Generator (PG) interface of Section 4.1.

A PG implements::

    initialize(**params)          -> None
    run(id, r_id, *dependencies)  -> value

``run`` must be a pure function of the instance ``id``, the random
number ``r(id)`` (supplied by the per-table skip-seed stream) and the
values of the properties it depends on — this is the contract that makes
in-place, distributed regeneration possible.

This codebase adds a vectorised entry point, ``run_many(ids, stream,
*dependency_arrays)``, which generators implement for speed; the scalar
``run`` derives from it so the paper's literal interface also holds.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PropertyGenerator"]


class PropertyGenerator:
    """Base class implementing the PG contract.

    Subclasses override :meth:`run_many` (vectorised) and declare
    :meth:`parameter_names`; they may also override :meth:`output_dtype`
    so tables get a precise dtype.
    """

    #: Name under which the generator is registered for the DSL.
    name = "abstract"

    #: Whether ``run_many`` accepts a preallocated ``out=`` buffer of
    #: ``output_dtype`` and fills it in place (the allocation-free
    #: pipeline contract used by the executor's shard scheduler).
    #: Third-party generators default to False, so the engine never
    #: passes ``out=`` to a ``run_many`` that does not declare it.
    supports_out = False

    #: First-class access classification (the property-side twin of the
    #: structure layer's ``emission`` flag; see docs/serving.md).
    #: ``"random"`` generators compute any id subset independently:
    #: ``run_many(ids, ...)`` is a pure per-id function, so
    #: ``properties_of`` returns exactly the rows of a full run.
    #: Third-party generators default to ``"sequential"`` until they
    #: declare otherwise, so the serving layer never hands them a
    #: sparse id set they were not written for.
    access = "sequential"

    def __init__(self, **params):
        self._params = {}
        if params:
            self.initialize(**params)

    # -- PG contract -----------------------------------------------------

    def initialize(self, **params):
        """Configure the generator; unknown keys raise immediately."""
        valid = self.parameter_names()
        for key in params:
            if key not in valid:
                raise TypeError(
                    f"{type(self).__name__} got unexpected parameter "
                    f"{key!r}; valid: {sorted(valid)}"
                )
        self._params.update(params)
        self._validate_params()

    def run(self, instance_id, r_id, *dependencies):
        """The paper's scalar interface: one value from one id.

        ``r_id`` is accepted for interface fidelity but regenerated
        internally from the stream when needed — the vectorised path
        owns randomness so scalar and vector calls agree bit-for-bit.
        """
        raise NotImplementedError(
            "scalar run() requires a bound stream; use run_many or "
            "BoundGenerator"
        )

    def run_many(self, ids, stream, *dependency_arrays):
        """Vectorised generation: values for all ``ids`` at once.

        Parameters
        ----------
        ids:
            int64 array of instance ids.
        stream:
            the PT's :class:`~repro.prng.RandomStream` (the paper's
            ``r``; implementations call ``stream.uniform(ids)`` etc.).
        dependency_arrays:
            one array per declared dependency, aligned with ``ids``.

        Generators with ``supports_out = True`` additionally accept a
        keyword-only ``out=`` array of ``output_dtype`` and length
        ``ids.size``; when given they write values into it (and return
        it) instead of allocating a fresh array, which lets the engine
        assemble sharded tables without a concatenation copy.
        """
        raise NotImplementedError

    def random_access(self):
        """Can this generator compute arbitrary id subsets?

        Defaults to the class-level :attr:`access` flag; subclasses
        override when the capability depends on parameters.
        """
        return self.access == "random"

    def properties_of(self, ids, stream, *dependency_arrays):
        """Values for an arbitrary id subset — the serving entry point.

        For random-access generators this returns, for each ``ids[j]``,
        exactly the value row ``ids[j]`` of a full ``run_many`` over the
        whole table would hold (byte-identical, including the dtype of
        an empty result).  ``dependency_arrays`` are aligned with
        ``ids`` — one dependency row per requested id.

        Raises ``TypeError`` for sequential generators: their output
        depends on ids outside the subset, so a virtual-graph server
        cannot answer point queries from them.

        >>> import numpy as np
        >>> from repro.prng import RandomStream
        >>> from repro.properties.numeric import UniformIntGenerator
        >>> g = UniformIntGenerator(low=0, high=100)
        >>> r = RandomStream(3, "T.x")
        >>> full = g.run_many(np.arange(10, dtype=np.int64), r)
        >>> subset = g.properties_of(np.array([7, 2]), r)
        >>> bool((subset == full[[7, 2]]).all())
        True
        """
        if not self.random_access():
            raise TypeError(
                f"{type(self).__name__} ({self.name!r}) declares "
                f"access={self.access!r}; only random-access "
                "generators can compute arbitrary id subsets"
            )
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        deps = [np.asarray(col) for col in dependency_arrays]
        return self.run_many(ids, stream, *deps)

    def _out_buffer(self, n, out, dtype=None):
        """Return ``out`` validated, or a fresh array of ``dtype``."""
        if out is None:
            return np.empty(
                n, dtype=self.output_dtype() if dtype is None else dtype
            )
        if out.shape != (n,):
            raise ValueError(
                f"out buffer has shape {out.shape}, expected ({n},)"
            )
        return out

    # -- hooks -----------------------------------------------------------------

    def parameter_names(self):
        """Set of accepted ``initialize`` keys."""
        return set()

    def _validate_params(self):
        """Validate current parameters (override as needed)."""

    def output_dtype(self):
        """Numpy dtype of generated values (object for strings)."""
        return np.dtype(object)

    def num_dependencies(self):
        """How many dependency arrays ``run_many`` expects (None = any)."""
        return 0

    def param(self, key, default=None):
        return self._params.get(key, default)

    def __repr__(self):
        kv = ", ".join(f"{k}={v!r}" for k, v in sorted(self._params.items()))
        return f"{type(self).__name__}({kv})"


class BoundGenerator:
    """A PG bound to a concrete stream: provides the paper's scalar
    ``run(id, r(id), *deps)`` with bit-identical results to the
    vectorised path.

    >>> import numpy as np
    >>> from repro.prng import RandomStream
    >>> from repro.properties.numeric import UniformIntGenerator
    >>> generator = UniformIntGenerator(low=0, high=10)
    >>> stream = RandomStream(1, "T.x")
    >>> bound = BoundGenerator(generator, stream)
    >>> scalar = bound.run(7)             # value for instance 7
    >>> vector = generator.run_many(np.array([7]), stream)
    >>> int(scalar) == int(vector[0])
    True
    """

    def __init__(self, generator, stream):
        self.generator = generator
        self.stream = stream

    def run(self, instance_id, r_id=None, *dependencies):
        ids = np.asarray([instance_id], dtype=np.int64)
        dep_arrays = [np.asarray([d]) for d in dependencies]
        values = self.generator.run_many(ids, self.stream, *dep_arrays)
        return values[0]
