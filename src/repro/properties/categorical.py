"""Categorical property generators: dictionaries and conditionals.

These cover the distribution requirements of the running example:
``country`` follows a real-life-like marginal, ``sex`` is drawn
conditionally on nothing, and ``name`` follows ``P(name | country,
sex)`` — a conditional dictionary lookup driven by inverse-transform
sampling (Section 4.1 names this technique explicitly).
"""

from __future__ import annotations

import numpy as np

from .base import PropertyGenerator

__all__ = ["CategoricalGenerator", "ConditionalGenerator", "WeightedDictGenerator"]


class CategoricalGenerator(PropertyGenerator):
    """Draw values from a fixed list with optional weights.

    Parameters (via ``initialize``)
    -------------------------------
    values:
        sequence of possible values (any hashable/printable objects).
    weights:
        matching nonnegative weights (uniform when omitted).
    """

    name = "categorical"

    def parameter_names(self):
        return {"values", "weights"}

    def _validate_params(self):
        values = self._params.get("values")
        weights = self._params.get("weights")
        if values is not None and len(values) == 0:
            raise ValueError("values must be non-empty")
        if weights is not None:
            if values is None or len(weights) != len(values):
                raise ValueError("weights must align with values")
            w = np.asarray(weights, dtype=np.float64)
            if (w < 0).any() or w.sum() <= 0:
                raise ValueError("weights must be nonnegative with mass")

    def _cdf(self):
        values = self._params["values"]
        weights = self._params.get("weights")
        if weights is None:
            w = np.full(len(values), 1.0 / len(values))
        else:
            w = np.asarray(weights, dtype=np.float64)
            w = w / w.sum()
        return np.cumsum(w)

    def run_many(self, ids, stream, *dependency_arrays):
        if "values" not in self._params:
            raise ValueError("CategoricalGenerator needs 'values'")
        ids = np.asarray(ids, dtype=np.int64)
        u = stream.uniform(ids)
        codes = np.searchsorted(self._cdf(), u, side="right")
        values = self._params["values"]
        out = np.empty(ids.size, dtype=self.output_dtype())
        for i, code in enumerate(codes):
            out[i] = values[min(int(code), len(values) - 1)]
        return out

    def output_dtype(self):
        values = self._params.get("values")
        if values is not None and all(
            isinstance(v, (int, np.integer)) for v in values
        ):
            return np.dtype(np.int64)
        return np.dtype(object)


class ConditionalGenerator(PropertyGenerator):
    """Conditional categorical: ``P(value | dep_1, ..., dep_j)``.

    Parameters (via ``initialize``)
    -------------------------------
    table:
        dict mapping a dependency-value tuple (or single value for one
        dependency) to ``(values, weights)`` pairs.
    default:
        fallback ``(values, weights)`` for unseen keys; without it an
        unseen key raises.

    This is the PG shape of ``P_name(X | country, sex)`` in Figure 1:
    ``table[("Germany", "female")] = (["Anna", "Lena", ...], [...])``.
    """

    name = "conditional"

    def parameter_names(self):
        return {"table", "default"}

    def _validate_params(self):
        table = self._params.get("table")
        if table is not None:
            if not isinstance(table, dict) or not table:
                raise ValueError("table must be a non-empty dict")
            for key, pair in table.items():
                values, weights = pair
                if len(values) == 0:
                    raise ValueError(f"key {key!r}: empty value list")
                if weights is not None and len(weights) != len(values):
                    raise ValueError(f"key {key!r}: weights misaligned")

    def num_dependencies(self):
        return None  # determined by the schema declaration

    @staticmethod
    def _normalise_key(key):
        if isinstance(key, tuple) and len(key) == 1:
            return key[0]
        return key

    def _lookup(self, key):
        table = self._params["table"]
        key = self._normalise_key(key)
        if key in table:
            return table[key]
        default = self._params.get("default")
        if default is None:
            raise KeyError(
                f"no conditional entry for {key!r} and no default"
            )
        return default

    def run_many(self, ids, stream, *dependency_arrays):
        if "table" not in self._params:
            raise ValueError("ConditionalGenerator needs 'table'")
        if not dependency_arrays:
            raise ValueError(
                "ConditionalGenerator requires at least one dependency"
            )
        ids = np.asarray(ids, dtype=np.int64)
        u = stream.uniform(ids)
        out = np.empty(ids.size, dtype=object)
        columns = [np.asarray(dep) for dep in dependency_arrays]
        cdf_cache = {}
        for i in range(ids.size):
            key = tuple(col[i] for col in columns)
            key = self._normalise_key(key)
            if key not in cdf_cache:
                values, weights = self._lookup(key)
                if weights is None:
                    w = np.full(len(values), 1.0 / len(values))
                else:
                    w = np.asarray(weights, dtype=np.float64)
                    w = w / w.sum()
                cdf_cache[key] = (values, np.cumsum(w))
            values, cdf = cdf_cache[key]
            code = int(np.searchsorted(cdf, u[i], side="right"))
            out[i] = values[min(code, len(values) - 1)]
        return out


class WeightedDictGenerator(PropertyGenerator):
    """Zipf-weighted draws from a (possibly large) dictionary.

    A common benchmark idiom: topics/interests follow a rank-skewed
    distribution over a word list.

    Parameters (via ``initialize``)
    -------------------------------
    values:
        the dictionary entries, assumed ordered by decreasing expected
        popularity.
    exponent:
        Zipf exponent (default 1.0).
    """

    name = "weighted_dict"

    def parameter_names(self):
        return {"values", "exponent"}

    def _validate_params(self):
        values = self._params.get("values")
        if values is not None and len(values) == 0:
            raise ValueError("values must be non-empty")
        exponent = self._params.get("exponent", 1.0)
        if exponent <= 0:
            raise ValueError("exponent must be positive")

    def run_many(self, ids, stream, *dependency_arrays):
        values = self._params.get("values")
        if values is None:
            raise ValueError("WeightedDictGenerator needs 'values'")
        exponent = float(self._params.get("exponent", 1.0))
        ranks = np.arange(1, len(values) + 1, dtype=np.float64)
        weights = ranks ** (-exponent)
        cdf = np.cumsum(weights / weights.sum())
        ids = np.asarray(ids, dtype=np.int64)
        codes = np.searchsorted(cdf, stream.uniform(ids), side="right")
        out = np.empty(ids.size, dtype=object)
        for i, code in enumerate(codes):
            out[i] = values[min(int(code), len(values) - 1)]
        return out
