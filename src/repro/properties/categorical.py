"""Categorical property generators: dictionaries and conditionals.

These cover the distribution requirements of the running example:
``country`` follows a real-life-like marginal, ``sex`` is drawn
conditionally on nothing, and ``name`` follows ``P(name | country,
sex)`` — a conditional dictionary lookup driven by inverse-transform
sampling (Section 4.1 names this technique explicitly).

The batched rewrite keeps the legacy draws bit-for-bit (same cdf, same
``searchsorted``/clamp semantics — pinned by
``tests/golden/properties/``) but replaces the per-row value loops:

* the plain categorical draw is one ``searchsorted`` plus one
  ``np.take`` into a cached value array;
* the conditional path factorises the dependency key columns into
  group codes (one dict probe per row — the only remaining Python
  work), then runs one vectorised inverse transform *per distinct
  key* instead of one scalar draw per row, a group-by over the
  conditional table.
"""

from __future__ import annotations

import numpy as np

from .base import PropertyGenerator

__all__ = ["CategoricalGenerator", "ConditionalGenerator", "WeightedDictGenerator"]


def _value_array(values):
    """``values`` as an object ndarray (no nested-sequence coercion)."""
    arr = np.empty(len(values), dtype=object)
    arr[:] = list(values)
    return arr


class _Factorizer(dict):
    """Interns keys to dense codes in one C-level pass.

    ``map(factorizer.__getitem__, keys)`` stays in C for every already
    -seen key; ``__missing__`` fires once per distinct key, recording
    first-seen order.  This is the cheapest way to factorise an object
    key column — ``np.unique`` needs sortable objects and measures ~4x
    slower on string columns.
    """

    __slots__ = ("keys_in_order",)

    def __init__(self):
        super().__init__()
        self.keys_in_order = []

    def __missing__(self, key):
        code = len(self.keys_in_order)
        self.keys_in_order.append(key)
        self[key] = code
        return code


def _decode_into(values_arr, cdf, u, out):
    """Inverse-transform ``u`` through ``cdf`` and gather values.

    Matches the legacy scalar loop exactly: ``searchsorted(...,
    side="right")`` then the defensive ``min(code, len - 1)`` clamp.
    """
    codes = np.searchsorted(cdf, u, side="right")
    np.minimum(codes, values_arr.size - 1, out=codes)
    np.take(values_arr, codes, out=out)
    return out


class CategoricalGenerator(PropertyGenerator):
    """Draw values from a fixed list with optional weights.

    Parameters (via ``initialize``)
    -------------------------------
    values:
        sequence of possible values (any hashable/printable objects).
    weights:
        matching nonnegative weights (uniform when omitted).
    """

    name = "categorical"
    supports_out = True
    access = "random"

    def parameter_names(self):
        return {"values", "weights"}

    def _validate_params(self):
        values = self._params.get("values")
        weights = self._params.get("weights")
        if values is not None and len(values) == 0:
            raise ValueError("values must be non-empty")
        if weights is not None:
            if values is None or len(weights) != len(values):
                raise ValueError("weights must align with values")
            w = np.asarray(weights, dtype=np.float64)
            if (w < 0).any() or w.sum() <= 0:
                raise ValueError("weights must be nonnegative with mass")
        self._cache = None

    def _cdf(self):
        values = self._params["values"]
        weights = self._params.get("weights")
        if weights is None:
            w = np.full(len(values), 1.0 / len(values))
        else:
            w = np.asarray(weights, dtype=np.float64)
            w = w / w.sum()
        return np.cumsum(w)

    def _tables(self):
        """Cached ``(cdf, value_array)`` for the current parameters."""
        values = self._params["values"]
        key = (id(values), len(values), id(self._params.get("weights")))
        cache = getattr(self, "_cache", None)
        if cache is not None and cache[0] == key:
            return cache[1], cache[2]
        cdf = self._cdf()
        if self.output_dtype() == np.int64:
            arr = np.asarray(list(values), dtype=np.int64)
        else:
            arr = _value_array(values)
        self._cache = (key, cdf, arr)
        return cdf, arr

    def run_many(self, ids, stream, *dependency_arrays, out=None):
        if "values" not in self._params:
            raise ValueError("CategoricalGenerator needs 'values'")
        ids = np.asarray(ids, dtype=np.int64)
        cdf, values_arr = self._tables()
        out = self._out_buffer(ids.size, out)
        return _decode_into(values_arr, cdf, stream.uniform(ids), out)

    def output_dtype(self):
        values = self._params.get("values")
        if values is not None and all(
            isinstance(v, (int, np.integer)) for v in values
        ):
            return np.dtype(np.int64)
        return np.dtype(object)


class ConditionalGenerator(PropertyGenerator):
    """Conditional categorical: ``P(value | dep_1, ..., dep_j)``.

    Parameters (via ``initialize``)
    -------------------------------
    table:
        dict mapping a dependency-value tuple (or single value for one
        dependency) to ``(values, weights)`` pairs.
    default:
        fallback ``(values, weights)`` for unseen keys; without it an
        unseen key raises.

    This is the PG shape of ``P_name(X | country, sex)`` in Figure 1:
    ``table[("Germany", "female")] = (["Anna", "Lena", ...], [...])``.
    """

    name = "conditional"
    supports_out = True
    access = "random"

    def parameter_names(self):
        return {"table", "default"}

    def _validate_params(self):
        table = self._params.get("table")
        if table is not None:
            if not isinstance(table, dict) or not table:
                raise ValueError("table must be a non-empty dict")
            for key, pair in table.items():
                values, weights = pair
                if len(values) == 0:
                    raise ValueError(f"key {key!r}: empty value list")
                if weights is not None and len(weights) != len(values):
                    raise ValueError(f"key {key!r}: weights misaligned")

    def num_dependencies(self):
        return None  # determined by the schema declaration

    @staticmethod
    def _normalise_key(key):
        if isinstance(key, tuple) and len(key) == 1:
            return key[0]
        return key

    def _lookup(self, key):
        table = self._params["table"]
        key = self._normalise_key(key)
        if key in table:
            return table[key]
        default = self._params.get("default")
        if default is None:
            raise KeyError(
                f"no conditional entry for {key!r} and no default"
            )
        return default

    def _group(self, key):
        """``(value_array, cdf)`` for one (normalised) dependency key."""
        values, weights = self._lookup(key)
        if weights is None:
            w = np.full(len(values), 1.0 / len(values))
        else:
            w = np.asarray(weights, dtype=np.float64)
            w = w / w.sum()
        return _value_array(values), np.cumsum(w)

    def run_many(self, ids, stream, *dependency_arrays, out=None):
        if "table" not in self._params:
            raise ValueError("ConditionalGenerator needs 'table'")
        if not dependency_arrays:
            raise ValueError(
                "ConditionalGenerator requires at least one dependency"
            )
        ids = np.asarray(ids, dtype=np.int64)
        u = stream.uniform(ids)
        out = self._out_buffer(ids.size, out)
        columns = [np.asarray(dep) for dep in dependency_arrays]
        # Factorise rows by dependency key, then all rows of a key
        # share one vectorised draw.  The whole pass runs in C:
        # map(dict.__getitem__) over a (tuple-reusing) zip, with
        # __missing__ interning each distinct key once.
        if len(columns) == 1:
            keys = iter(columns[0].tolist())
        else:
            keys = zip(*(col.tolist() for col in columns))
        factorizer = _Factorizer()
        key_codes = np.fromiter(
            map(factorizer.__getitem__, keys),
            dtype=np.int64,
            count=ids.size,
        )
        groups = [
            self._group(key) for key in factorizer.keys_in_order
        ]
        if len(groups) == 1:
            values_arr, cdf = groups[0]
            return _decode_into(values_arr, cdf, u, out)
        order = np.argsort(key_codes, kind="stable")
        bounds = np.searchsorted(
            key_codes[order], np.arange(len(groups) + 1)
        )
        for gi, (values_arr, cdf) in enumerate(groups):
            rows = order[bounds[gi]:bounds[gi + 1]]
            if rows.size == 0:
                continue
            codes = np.searchsorted(cdf, u[rows], side="right")
            np.minimum(codes, values_arr.size - 1, out=codes)
            out[rows] = values_arr[codes]
        return out


class WeightedDictGenerator(PropertyGenerator):
    """Zipf-weighted draws from a (possibly large) dictionary.

    A common benchmark idiom: topics/interests follow a rank-skewed
    distribution over a word list.

    Parameters (via ``initialize``)
    -------------------------------
    values:
        the dictionary entries, assumed ordered by decreasing expected
        popularity.
    exponent:
        Zipf exponent (default 1.0).
    """

    name = "weighted_dict"
    supports_out = True
    access = "random"

    def parameter_names(self):
        return {"values", "exponent"}

    def _validate_params(self):
        values = self._params.get("values")
        if values is not None and len(values) == 0:
            raise ValueError("values must be non-empty")
        exponent = self._params.get("exponent", 1.0)
        if exponent <= 0:
            raise ValueError("exponent must be positive")
        self._cache = None

    def _tables(self):
        values = self._params["values"]
        exponent = float(self._params.get("exponent", 1.0))
        key = (id(values), len(values), exponent)
        cache = getattr(self, "_cache", None)
        if cache is not None and cache[0] == key:
            return cache[1], cache[2]
        ranks = np.arange(1, len(values) + 1, dtype=np.float64)
        weights = ranks ** (-exponent)
        cdf = np.cumsum(weights / weights.sum())
        arr = _value_array(values)
        self._cache = (key, cdf, arr)
        return cdf, arr

    def run_many(self, ids, stream, *dependency_arrays, out=None):
        values = self._params.get("values")
        if values is None:
            raise ValueError("WeightedDictGenerator needs 'values'")
        ids = np.asarray(ids, dtype=np.int64)
        cdf, values_arr = self._tables()
        out = self._out_buffer(ids.size, out)
        return _decode_into(values_arr, cdf, stream.uniform(ids), out)
