"""Numeric property generators.

Already vectorised pre-rewrite; the batched pass adds the
allocation-free contract (``supports_out`` buffers, in-place ufuncs on
the draw arrays) and caches the Zipf cdf across shard calls instead of
rebuilding it per ``run_many``.
"""

from __future__ import annotations

import numpy as np

from .base import PropertyGenerator

__all__ = [
    "UniformIntGenerator",
    "UniformFloatGenerator",
    "NormalGenerator",
    "ZipfIntGenerator",
    "SequenceGenerator",
]


class UniformIntGenerator(PropertyGenerator):
    """Uniform integers in ``[low, high)``."""

    name = "uniform_int"
    supports_out = True
    access = "random"

    def parameter_names(self):
        return {"low", "high"}

    def _validate_params(self):
        low = self._params.get("low", 0)
        high = self._params.get("high")
        if high is not None and high <= low:
            raise ValueError("need low < high")

    def run_many(self, ids, stream, *dependency_arrays, out=None):
        high = self._params.get("high")
        if high is None:
            raise ValueError("UniformIntGenerator needs 'high'")
        low = int(self._params.get("low", 0))
        values = stream.randint(
            np.asarray(ids, dtype=np.int64), low, int(high)
        )
        if out is None:
            return values
        out[:] = values
        return out

    def output_dtype(self):
        return np.dtype(np.int64)


class UniformFloatGenerator(PropertyGenerator):
    """Uniform floats in ``[low, high)``."""

    name = "uniform_float"
    supports_out = True
    access = "random"

    def parameter_names(self):
        return {"low", "high"}

    def _validate_params(self):
        low = self._params.get("low", 0.0)
        high = self._params.get("high", 1.0)
        if high <= low:
            raise ValueError("need low < high")

    def run_many(self, ids, stream, *dependency_arrays, out=None):
        low = float(self._params.get("low", 0.0))
        high = float(self._params.get("high", 1.0))
        u = stream.uniform(np.asarray(ids, dtype=np.int64))
        # low + u * span, in place on the freshly drawn array.
        np.multiply(u, high - low, out=u)
        np.add(u, low, out=u)
        if out is None:
            return u
        out[:] = u
        return out

    def output_dtype(self):
        return np.dtype(np.float64)


class NormalGenerator(PropertyGenerator):
    """Gaussian values, optionally clipped."""

    name = "normal"
    supports_out = True
    access = "random"

    def parameter_names(self):
        return {"mean", "std", "clip_low", "clip_high"}

    def _validate_params(self):
        std = self._params.get("std", 1.0)
        if std <= 0:
            raise ValueError("std must be positive")

    def run_many(self, ids, stream, *dependency_arrays, out=None):
        values = stream.normal(
            np.asarray(ids, dtype=np.int64),
            float(self._params.get("mean", 0.0)),
            float(self._params.get("std", 1.0)),
        )
        lo = self._params.get("clip_low")
        hi = self._params.get("clip_high")
        if lo is not None or hi is not None:
            np.clip(
                values,
                -np.inf if lo is None else lo,
                np.inf if hi is None else hi,
                out=values,
            )
        if out is None:
            return values
        out[:] = values
        return out

    def output_dtype(self):
        return np.dtype(np.float64)


class ZipfIntGenerator(PropertyGenerator):
    """Zipf-distributed ranks ``1..k`` (heavy-tailed counts)."""

    name = "zipf_int"
    supports_out = True
    access = "random"

    def parameter_names(self):
        return {"exponent", "k"}

    def _validate_params(self):
        exponent = self._params.get("exponent", 1.0)
        if exponent <= 0:
            raise ValueError("exponent must be positive")
        k = self._params.get("k")
        if k is not None and k < 1:
            raise ValueError("k must be >= 1")
        self._cache = None

    def _cdf(self):
        k = int(self._params["k"])
        exponent = float(self._params.get("exponent", 1.0))
        cache = getattr(self, "_cache", None)
        if cache is not None and cache[0] == (k, exponent):
            return cache[1]
        ranks = np.arange(1, k + 1, dtype=np.float64)
        weights = ranks ** (-exponent)
        cdf = np.cumsum(weights / weights.sum())
        self._cache = ((k, exponent), cdf)
        return cdf

    def run_many(self, ids, stream, *dependency_arrays, out=None):
        if self._params.get("k") is None:
            raise ValueError("ZipfIntGenerator needs 'k'")
        codes = np.searchsorted(
            self._cdf(),
            stream.uniform(np.asarray(ids, dtype=np.int64)),
            side="right",
        )
        if out is None:
            return (codes + 1).astype(np.int64)
        np.add(codes, 1, out=out)
        return out

    def output_dtype(self):
        return np.dtype(np.int64)


class SequenceGenerator(PropertyGenerator):
    """Deterministic sequence ``start + step * id`` (no randomness).

    Useful for surrogate keys and monotone timestamps.
    """

    name = "sequence"
    supports_out = True
    access = "random"

    def parameter_names(self):
        return {"start", "step"}

    def run_many(self, ids, stream, *dependency_arrays, out=None):
        start = int(self._params.get("start", 0))
        step = int(self._params.get("step", 1))
        ids = np.asarray(ids, dtype=np.int64)
        if out is None:
            return start + step * ids
        np.multiply(ids, step, out=out)
        np.add(out, start, out=out)
        return out

    def output_dtype(self):
        return np.dtype(np.int64)
