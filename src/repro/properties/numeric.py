"""Numeric property generators."""

from __future__ import annotations

import numpy as np

from .base import PropertyGenerator

__all__ = [
    "UniformIntGenerator",
    "UniformFloatGenerator",
    "NormalGenerator",
    "ZipfIntGenerator",
    "SequenceGenerator",
]


class UniformIntGenerator(PropertyGenerator):
    """Uniform integers in ``[low, high)``."""

    name = "uniform_int"

    def parameter_names(self):
        return {"low", "high"}

    def _validate_params(self):
        low = self._params.get("low", 0)
        high = self._params.get("high")
        if high is not None and high <= low:
            raise ValueError("need low < high")

    def run_many(self, ids, stream, *dependency_arrays):
        high = self._params.get("high")
        if high is None:
            raise ValueError("UniformIntGenerator needs 'high'")
        low = int(self._params.get("low", 0))
        return stream.randint(np.asarray(ids, dtype=np.int64), low, int(high))

    def output_dtype(self):
        return np.dtype(np.int64)


class UniformFloatGenerator(PropertyGenerator):
    """Uniform floats in ``[low, high)``."""

    name = "uniform_float"

    def parameter_names(self):
        return {"low", "high"}

    def _validate_params(self):
        low = self._params.get("low", 0.0)
        high = self._params.get("high", 1.0)
        if high <= low:
            raise ValueError("need low < high")

    def run_many(self, ids, stream, *dependency_arrays):
        low = float(self._params.get("low", 0.0))
        high = float(self._params.get("high", 1.0))
        u = stream.uniform(np.asarray(ids, dtype=np.int64))
        return low + u * (high - low)

    def output_dtype(self):
        return np.dtype(np.float64)


class NormalGenerator(PropertyGenerator):
    """Gaussian values, optionally clipped."""

    name = "normal"

    def parameter_names(self):
        return {"mean", "std", "clip_low", "clip_high"}

    def _validate_params(self):
        std = self._params.get("std", 1.0)
        if std <= 0:
            raise ValueError("std must be positive")

    def run_many(self, ids, stream, *dependency_arrays):
        values = stream.normal(
            np.asarray(ids, dtype=np.int64),
            float(self._params.get("mean", 0.0)),
            float(self._params.get("std", 1.0)),
        )
        lo = self._params.get("clip_low")
        hi = self._params.get("clip_high")
        if lo is not None or hi is not None:
            values = np.clip(
                values,
                -np.inf if lo is None else lo,
                np.inf if hi is None else hi,
            )
        return values

    def output_dtype(self):
        return np.dtype(np.float64)


class ZipfIntGenerator(PropertyGenerator):
    """Zipf-distributed ranks ``1..k`` (heavy-tailed counts)."""

    name = "zipf_int"

    def parameter_names(self):
        return {"exponent", "k"}

    def _validate_params(self):
        exponent = self._params.get("exponent", 1.0)
        if exponent <= 0:
            raise ValueError("exponent must be positive")
        k = self._params.get("k")
        if k is not None and k < 1:
            raise ValueError("k must be >= 1")

    def run_many(self, ids, stream, *dependency_arrays):
        k = self._params.get("k")
        if k is None:
            raise ValueError("ZipfIntGenerator needs 'k'")
        exponent = float(self._params.get("exponent", 1.0))
        ranks = np.arange(1, int(k) + 1, dtype=np.float64)
        weights = ranks ** (-exponent)
        cdf = np.cumsum(weights / weights.sum())
        codes = np.searchsorted(
            cdf, stream.uniform(np.asarray(ids, dtype=np.int64)),
            side="right",
        )
        return (codes + 1).astype(np.int64)

    def output_dtype(self):
        return np.dtype(np.int64)


class SequenceGenerator(PropertyGenerator):
    """Deterministic sequence ``start + step * id`` (no randomness).

    Useful for surrogate keys and monotone timestamps.
    """

    name = "sequence"

    def parameter_names(self):
        return {"start", "step"}

    def run_many(self, ids, stream, *dependency_arrays):
        start = int(self._params.get("start", 0))
        step = int(self._params.get("step", 1))
        return start + step * np.asarray(ids, dtype=np.int64)

    def output_dtype(self):
        return np.dtype(np.int64)
