"""Property Tables: the paper's ``[id: Long, value: type]`` relation.

DataSynth stores one Property Table (PT) per ``<node type, property>``
and ``<edge type, property>`` pair (Section 4.1).  Ids are dense
``0..n-1`` per type, which lets us store a PT as a single value column —
the id column is implicit in the row position — while still exposing the
two-column relational view the paper describes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PropertyTable"]

_SUPPORTED_KINDS = {"i", "u", "f", "b", "U", "O", "M"}


class PropertyTable:
    """A columnar ``[id, value]`` table with dense ids.

    Parameters
    ----------
    name:
        qualified name, conventionally ``"Type.property"``.
    values:
        1-D array-like of property values; row ``i`` is the value of the
        instance with id ``i``.
    """

    __slots__ = ("name", "values")

    def __init__(self, name, values):
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError(
                f"PT {name!r}: values must be 1-D, got shape {values.shape}"
            )
        if values.dtype.kind not in _SUPPORTED_KINDS:
            raise TypeError(
                f"PT {name!r}: unsupported value dtype {values.dtype}"
            )
        self.name = str(name)
        self.values = values

    def __len__(self):
        return len(self.values)

    def __repr__(self):
        return (
            f"PropertyTable(name={self.name!r}, n={len(self)}, "
            f"dtype={self.values.dtype})"
        )

    def __eq__(self, other):
        if not isinstance(other, PropertyTable):
            return NotImplemented
        return self.name == other.name and np.array_equal(
            self.values, other.values
        )

    # -- relational view ---------------------------------------------------

    @property
    def ids(self):
        """The implicit dense id column ``0..n-1``."""
        return np.arange(len(self.values), dtype=np.int64)

    def rows(self):
        """Iterate ``(id, value)`` rows — the paper's 2-column relation."""
        for i, v in enumerate(self.values):
            yield i, v

    def iter_chunks(self, chunk_size, start=0, stop=None):
        """Iterate ``(chunk_start, values_view)`` over ``[start, stop)``.

        Chunks are zero-copy views of at most ``chunk_size`` rows, in id
        order; the streaming exporters consume these so a table is never
        re-materialised row by row.  An empty range yields nothing.
        """
        chunk_size = int(chunk_size)
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        n = len(self.values)
        start = int(start)
        stop = n if stop is None else min(int(stop), n)
        if not 0 <= start <= n:
            raise IndexError(
                f"PT {self.name!r}: start {start} out of range [0, {n}]"
            )
        for lo in range(start, stop, chunk_size):
            hi = min(lo + chunk_size, stop)
            yield lo, self.values[lo:hi]

    def value_of(self, instance_id):
        """Value of one instance (bounds-checked)."""
        idx = int(instance_id)
        if not 0 <= idx < len(self.values):
            raise IndexError(
                f"PT {self.name!r}: id {idx} out of range [0, {len(self)})"
            )
        return self.values[idx]

    def gather(self, instance_ids):
        """Vectorised lookup of many ids (used when generating edge
        properties that depend on endpoint node properties)."""
        ids = np.asarray(instance_ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= len(self.values)):
            raise IndexError(
                f"PT {self.name!r}: ids out of range [0, {len(self)})"
            )
        return self.values[ids]

    # -- categorical helpers -------------------------------------------------

    def categories(self):
        """Sorted unique values and their counts.

        Returns
        -------
        (values, counts):
            as produced by ``np.unique(..., return_counts=True)``.
        """
        return np.unique(self.values, return_counts=True)

    def codes(self):
        """Encode values as dense category codes.

        Returns
        -------
        (codes, categories):
            ``codes[i]`` is the index of ``values[i]`` within the sorted
            unique ``categories``.  This is the form SBM-Part consumes.
        """
        categories, codes = np.unique(self.values, return_inverse=True)
        return codes.astype(np.int64), categories

    def group_counts(self):
        """Counts per category code — the group sizes ``Q`` of Section 4.2."""
        _, counts = self.categories()
        return counts.astype(np.int64)

    def remap(self, mapping, name=None):
        """Return a new PT whose row ``i`` holds ``values[mapping[i]]``.

        This is how a matching ``f`` (structure node id -> PT row id) is
        applied to produce the final per-node property column.
        """
        mapping = np.asarray(mapping, dtype=np.int64)
        return PropertyTable(name or self.name, self.gather(mapping))

    def head(self, n=5):
        """First ``n`` rows as a list of tuples, for display."""
        return [(i, self.values[i]) for i in range(min(n, len(self)))]
