"""Columnar data model: Property Tables and Edge Tables (Section 4.1)."""

from .edge_table import EdgeTable
from .property_table import PropertyTable

__all__ = ["EdgeTable", "PropertyTable"]
