"""Edge Tables: the paper's ``[id, tailId, headId]`` relation.

One Edge Table (ET) per edge type (Section 4.1).  Edge ids are dense
``0..m-1``; tail/head hold node ids of the (possibly different) endpoint
types.  The ET is the universal graph representation in this codebase:
every structure generator returns one and SBM-Part consumes one.
"""

from __future__ import annotations

import numpy as np

__all__ = ["EdgeTable"]


class EdgeTable:
    """A columnar edge list with dense edge ids.

    Parameters
    ----------
    name:
        edge type name, e.g. ``"knows"``.
    tails, heads:
        1-D integer arrays of endpoint node ids (same length).
    num_tail_nodes, num_head_nodes:
        sizes of the endpoint id spaces.  For a monopartite edge type the
        two are equal; defaults are inferred from the data when omitted.
    directed:
        whether edge orientation is meaningful.  Undirected tables treat
        ``(u, v)`` and ``(v, u)`` as the same edge in deduplication and
        degree computations.
    """

    __slots__ = (
        "name",
        "tails",
        "heads",
        "num_tail_nodes",
        "num_head_nodes",
        "directed",
    )

    def __init__(
        self,
        name,
        tails,
        heads,
        num_tail_nodes=None,
        num_head_nodes=None,
        directed=False,
    ):
        tails = np.ascontiguousarray(tails, dtype=np.int64)
        heads = np.ascontiguousarray(heads, dtype=np.int64)
        if tails.ndim != 1 or heads.ndim != 1:
            raise ValueError(f"ET {name!r}: tails/heads must be 1-D")
        if tails.shape != heads.shape:
            raise ValueError(
                f"ET {name!r}: tails and heads lengths differ "
                f"({tails.shape[0]} vs {heads.shape[0]})"
            )
        if tails.size and (tails.min() < 0 or heads.min() < 0):
            raise ValueError(f"ET {name!r}: node ids must be nonnegative")
        inferred_tail = int(tails.max()) + 1 if tails.size else 0
        inferred_head = int(heads.max()) + 1 if heads.size else 0
        if num_tail_nodes is None:
            num_tail_nodes = max(inferred_tail, inferred_head)
        if num_head_nodes is None:
            num_head_nodes = num_tail_nodes
        if inferred_tail > num_tail_nodes or inferred_head > num_head_nodes:
            raise ValueError(
                f"ET {name!r}: node ids exceed the declared id space"
            )
        self.name = str(name)
        self.tails = tails
        self.heads = heads
        self.num_tail_nodes = int(num_tail_nodes)
        self.num_head_nodes = int(num_head_nodes)
        self.directed = bool(directed)

    # -- basic protocol ------------------------------------------------------

    def __len__(self):
        return len(self.tails)

    @property
    def num_edges(self):
        """Number of edges ``m``."""
        return len(self.tails)

    @property
    def num_nodes(self):
        """Node id-space size for monopartite tables."""
        if self.is_bipartite:
            raise ValueError(
                f"ET {self.name!r} is bipartite; use num_tail_nodes / "
                "num_head_nodes"
            )
        return self.num_tail_nodes

    @property
    def is_bipartite(self):
        """True when tail and head id spaces differ in size."""
        return self.num_tail_nodes != self.num_head_nodes

    @property
    def ids(self):
        """The implicit dense edge id column ``0..m-1``."""
        return np.arange(len(self), dtype=np.int64)

    def __repr__(self):
        kind = "directed" if self.directed else "undirected"
        return (
            f"EdgeTable(name={self.name!r}, m={len(self)}, "
            f"n_tail={self.num_tail_nodes}, n_head={self.num_head_nodes}, "
            f"{kind})"
        )

    def __eq__(self, other):
        if not isinstance(other, EdgeTable):
            return NotImplemented
        return (
            self.name == other.name
            and self.directed == other.directed
            and self.num_tail_nodes == other.num_tail_nodes
            and self.num_head_nodes == other.num_head_nodes
            and np.array_equal(self.tails, other.tails)
            and np.array_equal(self.heads, other.heads)
        )

    def rows(self):
        """Iterate ``(id, tailId, headId)`` rows."""
        for i in range(len(self)):
            yield i, int(self.tails[i]), int(self.heads[i])

    def iter_chunks(self, chunk_size, start=0, stop=None):
        """Iterate ``(chunk_start, tails_view, heads_view)`` over
        ``[start, stop)`` edge ids.

        Chunks are zero-copy views of at most ``chunk_size`` edges, in
        edge-id order — the unit the streaming exporters format and
        write without materialising per-row tuples.
        """
        chunk_size = int(chunk_size)
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        m = len(self)
        start = int(start)
        stop = m if stop is None else min(int(stop), m)
        if not 0 <= start <= m:
            raise IndexError(
                f"ET {self.name!r}: start {start} out of range [0, {m}]"
            )
        for lo in range(start, stop, chunk_size):
            hi = min(lo + chunk_size, stop)
            yield lo, self.tails[lo:hi], self.heads[lo:hi]

    # -- degree and adjacency --------------------------------------------------

    def out_degrees(self):
        """Degree of each tail-side node (out-degree when directed)."""
        return np.bincount(self.tails, minlength=self.num_tail_nodes).astype(
            np.int64
        )

    def in_degrees(self):
        """Degree of each head-side node (in-degree when directed)."""
        return np.bincount(self.heads, minlength=self.num_head_nodes).astype(
            np.int64
        )

    def degrees(self):
        """Total degree per node (undirected view; monopartite only)."""
        n = self.num_nodes
        deg = np.bincount(self.tails, minlength=n)
        deg += np.bincount(self.heads, minlength=n)
        if not self.directed:
            # Self loops were counted twice above, which matches the
            # standard undirected degree convention, so nothing to fix.
            pass
        return deg.astype(np.int64)

    def adjacency_csr(self):
        """Undirected adjacency in CSR form ``(indptr, neighbors, edge_ids)``.

        Both endpoints index each edge, so every edge appears twice (once
        per direction).  ``edge_ids`` maps each adjacency slot back to the
        edge id, which the streaming matcher uses.
        """
        n = self.num_nodes
        m = len(self)
        src = np.concatenate([self.tails, self.heads])
        dst = np.concatenate([self.heads, self.tails])
        eid = np.concatenate([self.ids, self.ids])
        order = np.argsort(src, kind="stable")
        src = src[order]
        dst = dst[order]
        eid = eid[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        counts = np.bincount(src, minlength=n)
        np.cumsum(counts, out=indptr[1:])
        assert indptr[-1] == 2 * m
        return indptr, dst, eid

    # -- transformations -------------------------------------------------------

    def canonicalized(self):
        """Undirected canonical form: ``tail <= head``, sorted, dense ids."""
        lo = np.minimum(self.tails, self.heads)
        hi = np.maximum(self.tails, self.heads)
        order = np.lexsort((hi, lo))
        return EdgeTable(
            self.name,
            lo[order],
            hi[order],
            num_tail_nodes=self.num_tail_nodes,
            num_head_nodes=self.num_head_nodes,
            directed=self.directed,
        )

    def deduplicated(self, drop_self_loops=True):
        """Remove parallel edges (and optionally self loops).

        For undirected tables ``(u, v)`` and ``(v, u)`` collapse together.
        Structure generators that produce multigraphs (configuration
        model, RMAT) call this to deliver simple graphs.
        """
        if self.directed:
            lo, hi = self.tails, self.heads
        else:
            lo = np.minimum(self.tails, self.heads)
            hi = np.maximum(self.tails, self.heads)
        keys = lo * np.int64(self.num_head_nodes) + hi
        if drop_self_loops and not self.is_bipartite:
            keep = lo != hi
            keys = keys[keep]
            lo, hi = lo[keep], hi[keep]
        _, first = np.unique(keys, return_index=True)
        first.sort()
        return EdgeTable(
            self.name,
            lo[first],
            hi[first],
            num_tail_nodes=self.num_tail_nodes,
            num_head_nodes=self.num_head_nodes,
            directed=self.directed,
        )

    def relabeled(self, tail_mapping, head_mapping=None):
        """Apply node-id mappings to endpoints.

        ``head_mapping`` defaults to ``tail_mapping`` for monopartite
        tables.  This is how a matching ``f`` is applied to a structure.
        """
        tail_mapping = np.asarray(tail_mapping, dtype=np.int64)
        if head_mapping is None:
            head_mapping = tail_mapping
        else:
            head_mapping = np.asarray(head_mapping, dtype=np.int64)
        return EdgeTable(
            self.name,
            tail_mapping[self.tails],
            head_mapping[self.heads],
            num_tail_nodes=len(tail_mapping),
            num_head_nodes=len(head_mapping),
            directed=self.directed,
        )

    def subsample(self, edge_ids):
        """Keep only the listed edge ids (re-densified)."""
        ids = np.asarray(edge_ids, dtype=np.int64)
        return EdgeTable(
            self.name,
            self.tails[ids],
            self.heads[ids],
            num_tail_nodes=self.num_tail_nodes,
            num_head_nodes=self.num_head_nodes,
            directed=self.directed,
        )

    def head_rows(self, n=5):
        """First ``n`` rows as tuples, for display."""
        return [(i, int(self.tails[i]), int(self.heads[i]))
                for i in range(min(n, len(self)))]
